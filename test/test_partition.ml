(* Partition-hardening tests: lossy/one-way/flapping fault models, the
   multi-window partition schedules, the anti-entropy catch-up layer, the
   convergence watchdog and the partition-aware repro headers — plus the
   QCheck safety property over arbitrary message-losing schedules composed
   with crash-recovery plans. *)

open Simulator
open Ec_core
open Explore

let rng = Rng.create 3

(* ------------------------------------------------------------------ *)
(* Net: lossy / one-way / flapping fault models                        *)
(* ------------------------------------------------------------------ *)

let fault_fn fm =
  match Net.instantiate_faults fm with
  | Some f -> f
  | None -> Alcotest.fail "expected a real fault model, got no_faults"

let is_drop = function Net.Drop -> true | _ -> false
let is_deliver = function Net.Deliver -> true | _ -> false

let test_lossy_drops_cross_block_only () =
  let spec =
    { Net.blocks = [ [ 0; 1 ]; [ 2; 3 ] ]; from_time = 10; until_time = 30 }
  in
  let f = fault_fn (Net.lossy_partition spec) in
  Alcotest.(check bool) "cross dropped" true
    (is_drop (f ~src:0 ~dst:2 ~now:15 ~rng));
  Alcotest.(check bool) "cross dropped (reverse)" true
    (is_drop (f ~src:3 ~dst:1 ~now:15 ~rng));
  Alcotest.(check bool) "same block flows" true
    (is_deliver (f ~src:0 ~dst:1 ~now:15 ~rng));
  Alcotest.(check bool) "before window" true
    (is_deliver (f ~src:0 ~dst:2 ~now:9 ~rng));
  Alcotest.(check bool) "at heal" true
    (is_deliver (f ~src:0 ~dst:2 ~now:30 ~rng))

let test_oneway_drops_one_direction () =
  let f =
    fault_fn
      (Net.oneway_partition ~from_block:[ 0; 1 ] ~from_time:10 ~until_time:30)
  in
  Alcotest.(check bool) "from-block outward dropped" true
    (is_drop (f ~src:0 ~dst:2 ~now:15 ~rng));
  Alcotest.(check bool) "reverse direction flows" true
    (is_deliver (f ~src:2 ~dst:0 ~now:15 ~rng));
  Alcotest.(check bool) "inside from-block flows" true
    (is_deliver (f ~src:0 ~dst:1 ~now:15 ~rng));
  Alcotest.(check bool) "outside window" true
    (is_deliver (f ~src:0 ~dst:2 ~now:30 ~rng))

let test_flapping_alternates () =
  let f =
    fault_fn
      (Net.flapping_partition
         ~blocks:[ [ 0 ]; [ 1 ] ]
         ~from_time:10 ~until_time:30 ~period:5)
  in
  let fate now = f ~src:0 ~dst:1 ~now ~rng in
  Alcotest.(check bool) "before" true (is_deliver (fate 9));
  Alcotest.(check bool) "first down-window" true (is_drop (fate 12));
  Alcotest.(check bool) "first up-window" true (is_deliver (fate 17));
  Alcotest.(check bool) "second down-window" true (is_drop (fate 22));
  Alcotest.(check bool) "second up-window" true (is_deliver (fate 27));
  Alcotest.(check bool) "after" true (is_deliver (fate 30))

let test_repeating_windows_shape () =
  Alcotest.(check (list (pair int int)))
    "down/up alternation"
    [ (10, 15); (20, 25) ]
    (Net.repeating_windows ~from_time:10 ~until_time:30 ~down:5 ~up:5);
  Alcotest.(check (list (pair int int)))
    "last window clipped"
    [ (10, 15); (20, 23) ]
    (Net.repeating_windows ~from_time:10 ~until_time:23 ~down:5 ~up:5)

(* A one-window schedule must compute exactly the delays of [partitioned]:
   same results from the same rng stream, over a grid of sends. *)
let test_single_window_matches_partitioned () =
  let spec =
    { Net.blocks = [ [ 0; 1 ]; [ 2 ] ]; from_time = 10; until_time = 30 }
  in
  let base = Net.uniform ~min:1 ~max:5 in
  let d1 = Net.instantiate (Net.partitioned spec ~base) in
  let d2 =
    Net.instantiate
      (Net.partitioned_windows ~blocks:spec.Net.blocks
         ~windows:[ (spec.Net.from_time, spec.Net.until_time) ]
         ~base)
  in
  let r1 = Rng.create 11 and r2 = Rng.create 11 in
  for now = 0 to 40 do
    List.iter
      (fun (src, dst) ->
         Alcotest.(check int)
           (Printf.sprintf "delay %d->%d at %d" src dst now)
           (Net.delay_of d1 ~src ~dst ~now ~rng:r1)
           (Net.delay_of d2 ~src ~dst ~now ~rng:r2))
      [ (0, 1); (0, 2); (2, 0); (1, 2) ]
  done

let test_window_schedule_rejected () =
  let rejects windows =
    match
      Net.instantiate
        (Net.partitioned_windows ~blocks:[ [ 0 ]; [ 1 ] ] ~windows
           ~base:(Net.constant 1))
    with
    | exception Invalid_argument _ -> true
    | d ->
      (match Net.delay_of d ~src:0 ~dst:1 ~now:0 ~rng with
       | exception Invalid_argument _ -> true
       | _ -> false)
  in
  Alcotest.(check bool) "overlapping" true (rejects [ (10, 20); (15, 25) ]);
  Alcotest.(check bool) "decreasing" true (rejects [ (20, 25); (10, 15) ]);
  Alcotest.(check bool) "inverted" true (rejects [ (20, 10) ])

(* ------------------------------------------------------------------ *)
(* Anti-entropy catch-up and the convergence watchdog                  *)
(* ------------------------------------------------------------------ *)

(* The E18 shape, test-sized: p3 cut off by a LOSSY partition across most
   of the workload; its partition-era posts reach nobody and everybody
   else's posts never reach it.  Only anti-entropy can repair both
   directions (the leader's promotes only re-teach what the leader
   knows). *)
let n = 4
let deadline = 240
let cut_from = 40
let cut_until = 120
let posts = 12
let last_post = 8 + ((posts - 1) * 8)

let partition_setup () =
  { (Harness.Scenario.default ~n ~deadline) with
    Harness.Scenario.delay = Net.uniform ~min:1 ~max:3;
    faults =
      Net.lossy_partition
        { Net.blocks = [ [ 0; 1; 2 ]; [ 3 ] ];
          from_time = cut_from;
          until_time = cut_until };
    omega = Harness.Scenario.Oracle { stabilize_at = 0; pre = Detectors.Omega.Self_trust } }

let run_partitioned ?ae_mutation ?(mode = Anti_entropy.Digest) () =
  let setup = partition_setup () in
  let inputs =
    Harness.Scenario.spread_posts ~n ~count:posts ~from_time:8 ~every:8
  in
  let trace, handles =
    Harness.Scenario.run_etob_ae ~inputs
      ~ae_config:{ Anti_entropy.default_config with Anti_entropy.mode }
      ?ae_mutation setup
  in
  let run =
    Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace
  in
  (run, handles)

let settle = max cut_until last_post
let bound = deadline - settle

let test_ae_heals_lossy_partition () =
  let run, _ = run_partitioned () in
  let report = Properties.etob_report run in
  Alcotest.(check bool) "base TOB properties" true
    (Properties.etob_base_ok report);
  match Harness.Watchdog.check ~settle ~bound run with
  | Harness.Watchdog.Converged { at } ->
    Alcotest.(check bool) "convergence needed the heal" true (at > cut_from)
  | Harness.Watchdog.Stalled _ as v ->
    Alcotest.failf "expected convergence, got %a" Harness.Watchdog.pp v

(* Delta traffic is O(missing), not O(history): the digest run's repair
   payload is in the order of what was actually learned, and strictly
   below the flood strawman's periodic full-set pushes. *)
let test_ae_delta_traffic_proportional () =
  let payload_of handles =
    Array.fold_left
      (fun (payload, learned) (_, ae) ->
         let s = Anti_entropy.stats ae in
         ( payload + s.Anti_entropy.delta_msgs + s.Anti_entropy.flood_msgs,
           learned + s.Anti_entropy.learned ))
      (0, 0) handles
  in
  let _, digest_handles = run_partitioned ~mode:Anti_entropy.Digest () in
  let _, flood_handles = run_partitioned ~mode:Anti_entropy.Flood () in
  let d_payload, d_learned = payload_of digest_handles in
  let f_payload, _ = payload_of flood_handles in
  Alcotest.(check bool) "something was repaired" true (d_learned > 0);
  Alcotest.(check bool)
    (Printf.sprintf "digest payload %d bounded by missing (%d learned)"
       d_payload d_learned)
    true
    (d_payload <= 10 * d_learned);
  Alcotest.(check bool)
    (Printf.sprintf "digest %d strictly below flood %d" d_payload f_payload)
    true (d_payload < f_payload)

let test_skip_digest_stalls () =
  let run, _ = run_partitioned ~ae_mutation:Anti_entropy.Skip_digest () in
  match Harness.Watchdog.check ~settle ~bound run with
  | Harness.Watchdog.Converged _ ->
    Alcotest.fail "skip-digest mutant converged: watchdog blind"
  | Harness.Watchdog.Stalled { laggards; _ } as v ->
    Alcotest.(check bool) "someone is behind" true (laggards <> []);
    List.iter
      (fun l ->
         Alcotest.(check bool) "missing messages counted" true
           (l.Harness.Watchdog.missing >= 1))
      laggards;
    List.iter
      (fun line ->
         Alcotest.(check bool)
           (Printf.sprintf "diagnosis line %S" line)
           true
           (String.length line >= 9 && String.sub line 0 9 = "liveness:"))
      (Harness.Watchdog.violations v)

(* ------------------------------------------------------------------ *)
(* Adversity and repro text forms                                      *)
(* ------------------------------------------------------------------ *)

let roundtrip_specs =
  [ Adversity.Lossy_partition { left = [ 0; 2 ]; from_time = 10; until_time = 64 };
    Adversity.Oneway_partition { left = [ 1 ]; from_time = 5; until_time = 200 };
    Adversity.Flapping_partition
      { left = [ 0; 1 ]; from_time = 17; until_time = 64; period = 3 } ]

let test_adversity_line_roundtrip () =
  List.iter
    (fun spec ->
       match Adversity.of_line (Adversity.to_line spec) with
       | Ok spec' ->
         Alcotest.(check string) "roundtrip" (Adversity.to_line spec)
           (Adversity.to_line spec')
       | Error msg -> Alcotest.failf "parse %s: %s" (Adversity.to_line spec) msg)
    roundtrip_specs

let test_adversity_settles_at_heal () =
  List.iter
    (fun spec ->
       let until =
         match spec with
         | Adversity.Lossy_partition { until_time; _ }
         | Adversity.Oneway_partition { until_time; _ }
         | Adversity.Flapping_partition { until_time; _ } -> until_time
         | _ -> assert false
       in
       Alcotest.(check int) "nothing buffered: settle = heal" until
         (Adversity.settle_time ~base_max:3 [ spec ]))
    roundtrip_specs

let test_repro_roundtrip_partition_headers () =
  let target =
    { Explorer.default_target with
      Explorer.ae = true;
      watchdog = true;
      ae_mutation = Some Anti_entropy.Skip_digest }
  in
  let repro =
    { Repro.target;
      seed = 46;
      plan = roundtrip_specs;
      digest = "";
      violations = [ "liveness: p3 not converged by 140" ] }
  in
  match Repro.of_string (Repro.to_string repro) with
  | Error msg -> Alcotest.failf "roundtrip parse: %s" msg
  | Ok r ->
    Alcotest.(check bool) "ae preserved" true r.Repro.target.Explorer.ae;
    Alcotest.(check bool) "watchdog preserved" true
      r.Repro.target.Explorer.watchdog;
    Alcotest.(check bool) "ae-mutant preserved" true
      (r.Repro.target.Explorer.ae_mutation = Some Anti_entropy.Skip_digest);
    Alcotest.(check (list string)) "plan preserved"
      (Adversity.to_lines repro.Repro.plan)
      (Adversity.to_lines r.Repro.plan);
    Alcotest.(check string) "byte-stable text" (Repro.to_string repro)
      (Repro.to_string r)

let test_repro_bad_header_names_line () =
  let target = { Explorer.default_target with Explorer.ae = true } in
  let repro =
    { Repro.target; seed = 1; plan = []; digest = ""; violations = [] }
  in
  let mangled =
    String.concat "\n"
      (List.map
         (fun l -> if l = "ae on" then "ae maybe" else l)
         (String.split_on_char '\n' (Repro.to_string repro)))
  in
  match Repro.of_string mangled with
  | Ok _ -> Alcotest.fail "mangled ae header parsed"
  | Error msg ->
    let contains_line =
      let len = String.length msg in
      let rec scan i =
        i + 4 <= len && (String.sub msg i 4 = "line" || scan (i + 1))
      in
      scan 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "error names the line: %s" msg)
      true contains_line

(* ------------------------------------------------------------------ *)
(* QCheck: safety under arbitrary message loss + crash-recovery        *)
(* ------------------------------------------------------------------ *)

(* P3 (causal order) and the other safety properties must hold under ANY
   lossy/one-way/flapping schedule composed with crash-recovery plans —
   including schedules that never heal.  Liveness is legitimately lost
   under such plans, so the watchdog stays off. *)
let prop_safety_under_partition_loss =
  QCheck.Test.make
    ~name:"alg5+ae: causal order under arbitrary message-losing schedules"
    ~count:30
    QCheck.(
      pair
        (Qgen.partition_recovery_plan_arb ~n:4 ~deadline:240)
        (pair small_nat Qgen.delay_bounds_arb))
    (fun (plan, (seed, (base_min, base_max))) ->
       let t =
         { Explorer.default_target with Explorer.ae = true; base_min; base_max }
       in
       let o = Explorer.run_plan t ~seed plan in
       match o.Explorer.report with
       | None -> false (* the run raised *)
       | Some r ->
         r.Properties.causal_order.Properties.ok
         && r.Properties.no_creation.Properties.ok
         && r.Properties.no_duplication.Properties.ok
         && r.Properties.distinct_broadcasts.Properties.ok)

(* ------------------------------------------------------------------ *)

let qc = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "partition"
    [ ("net-faults",
       [ Alcotest.test_case "lossy drops cross-block only" `Quick
           test_lossy_drops_cross_block_only;
         Alcotest.test_case "oneway drops one direction" `Quick
           test_oneway_drops_one_direction;
         Alcotest.test_case "flapping alternates" `Quick test_flapping_alternates;
         Alcotest.test_case "repeating_windows shape" `Quick
           test_repeating_windows_shape;
         Alcotest.test_case "single window = partitioned" `Quick
           test_single_window_matches_partitioned;
         Alcotest.test_case "bad window schedules rejected" `Quick
           test_window_schedule_rejected ]);
      ("anti-entropy",
       [ Alcotest.test_case "digest heals a lossy partition" `Quick
           test_ae_heals_lossy_partition;
         Alcotest.test_case "delta traffic is O(missing)" `Quick
           test_ae_delta_traffic_proportional;
         Alcotest.test_case "skip-digest stalls (watchdog catches)" `Quick
           test_skip_digest_stalls ]);
      ("text-forms",
       [ Alcotest.test_case "adversity line roundtrip" `Quick
           test_adversity_line_roundtrip;
         Alcotest.test_case "lossy settle = heal time" `Quick
           test_adversity_settles_at_heal;
         Alcotest.test_case "repro partition headers roundtrip" `Quick
           test_repro_roundtrip_partition_headers;
         Alcotest.test_case "repro bad header names its line" `Quick
           test_repro_bad_header_names_line ]);
      ("properties", qc [ prop_safety_under_partition_loss ]);
    ]
