(* Tests for the simulated stable storage: WAL append/sync semantics,
   atomic snapshots, checksum verification on replay, and the injected
   disk faults that damage the dirty tail (and nothing else). *)

open Persist

(* ------------------------------------------------------------------ *)
(* Basics                                                              *)
(* ------------------------------------------------------------------ *)

let test_fresh_open_is_empty () =
  let s = Store.create () in
  let o = Store.open_ s in
  Alcotest.(check bool) "not restarted" false o.Store.restarted;
  Alcotest.(check (option string)) "no snapshot" None o.Store.snapshot;
  Alcotest.(check (list string)) "no records" [] o.Store.records

let test_append_replays_in_order () =
  let s = Store.create () in
  ignore (Store.open_ s);
  List.iter (Store.append s) [ "a"; "b"; "c" ];
  Store.sync s;
  Alcotest.(check int) "log length" 3 (Store.log_length s);
  let o = Store.open_ s in
  Alcotest.(check bool) "restarted" true o.Store.restarted;
  Alcotest.(check (list string)) "oldest first" [ "a"; "b"; "c" ]
    o.Store.records

(* With no armed fault the dirty tail is intact: a clean crash loses
   nothing, sync only bounds what a *fault* can damage. *)
let test_unsynced_tail_survives_clean_crash () =
  let s = Store.create () in
  ignore (Store.open_ s);
  Store.append s "a";
  Store.sync s;
  Store.append s "b";
  let o = Store.open_ s in
  Alcotest.(check (list string)) "dirty record survives" [ "a"; "b" ]
    o.Store.records

let test_snapshot_truncates_log () =
  let s = Store.create () in
  ignore (Store.open_ s);
  List.iter (Store.append s) [ "a"; "b" ];
  Store.install_snapshot s "SNAP";
  Store.append s "c";
  let o = Store.open_ s in
  Alcotest.(check (option string)) "snapshot" (Some "SNAP") o.Store.snapshot;
  Alcotest.(check (list string)) "only post-snapshot records" [ "c" ]
    o.Store.records

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)
(* ------------------------------------------------------------------ *)

let with_dirty_tail () =
  let s = Store.create () in
  ignore (Store.open_ s);
  Store.append s "a";
  Store.sync s;
  List.iter (Store.append s) [ "b"; "c"; "d" ];
  s

let test_torn_tail_loses_newest () =
  let s = with_dirty_tail () in
  Store.arm_fault s Store.Torn_tail;
  let o = Store.open_ s in
  Alcotest.(check (list string)) "newest dirty record gone" [ "a"; "b"; "c" ]
    o.Store.records;
  let st = Store.stats s in
  Alcotest.(check int) "checksum caught it" 1 st.Store.corrupt_detected;
  Alcotest.(check int) "one record lost" 1 st.Store.records_lost

let test_lost_suffix_drops_k () =
  let s = with_dirty_tail () in
  Store.arm_fault s (Store.Lost_suffix 2);
  let o = Store.open_ s in
  Alcotest.(check (list string)) "newest two gone" [ "a"; "b" ] o.Store.records;
  Alcotest.(check int) "counted" 2 (Store.stats s).Store.records_lost

let test_lost_suffix_clamped_to_dirty () =
  let s = with_dirty_tail () in
  Store.arm_fault s (Store.Lost_suffix 99);
  let o = Store.open_ s in
  Alcotest.(check (list string)) "synced prefix untouched" [ "a" ]
    o.Store.records

(* The oldest dirty record is damaged: replay stops at the checksum
   failure, so the whole tail after it is lost too. *)
let test_corrupt_record_hides_tail () =
  let s = with_dirty_tail () in
  Store.arm_fault s Store.Corrupt_record;
  let o = Store.open_ s in
  Alcotest.(check (list string)) "replay stops at damage" [ "a" ]
    o.Store.records;
  let st = Store.stats s in
  Alcotest.(check int) "one checksum failure" 1 st.Store.corrupt_detected;
  Alcotest.(check int) "damaged + hidden" 3 st.Store.records_lost

let test_fault_with_clean_tail_is_noop () =
  let s = Store.create () in
  ignore (Store.open_ s);
  List.iter (Store.append s) [ "a"; "b" ];
  Store.sync s;
  Store.arm_fault s Store.Torn_tail;
  Store.arm_fault s Store.Corrupt_record;
  let o = Store.open_ s in
  Alcotest.(check (list string)) "synced data immune" [ "a"; "b" ]
    o.Store.records;
  ignore (Store.open_ s);
  Alcotest.(check int) "nothing lost" 0 (Store.stats s).Store.records_lost

(* One armed fault per crash, in arming order. *)
let test_faults_apply_fifo_one_per_crash () =
  let s = Store.create () in
  ignore (Store.open_ s);
  Store.append s "a";
  Store.arm_fault s (Store.Lost_suffix 1);
  Store.arm_fault s Store.Torn_tail;
  let o = Store.open_ s in
  Alcotest.(check (list string)) "first crash: suffix lost" [] o.Store.records;
  Store.append s "b";
  Store.append s "c";
  let o = Store.open_ s in
  Alcotest.(check (list string)) "second crash: torn newest" [ "b" ]
    o.Store.records;
  Store.append s "d";
  let o = Store.open_ s in
  Alcotest.(check (list string)) "faults exhausted" [ "b"; "d" ]
    o.Store.records

(* Damage is applied once: later incarnations see the truncated log, not
   a fresh replay of the corruption. *)
let test_damage_not_double_counted () =
  let s = with_dirty_tail () in
  Store.arm_fault s Store.Torn_tail;
  ignore (Store.open_ s);
  ignore (Store.open_ s);
  let st = Store.stats s in
  Alcotest.(check int) "lost once" 1 st.Store.records_lost;
  Alcotest.(check int) "detected once" 1 st.Store.corrupt_detected;
  Alcotest.(check int) "two restarts" 2 st.Store.restarts

(* Faults are armed per store; they never fire on a first open. *)
let test_no_fault_on_first_open () =
  let s = Store.create () in
  Store.arm_fault s (Store.Lost_suffix 5);
  let o = Store.open_ s in
  Alcotest.(check bool) "first open is not a restart" false o.Store.restarted;
  Alcotest.(check int) "nothing lost" 0 (Store.stats s).Store.records_lost

(* ------------------------------------------------------------------ *)
(* Text form, stats, pool                                              *)
(* ------------------------------------------------------------------ *)

let test_fault_text_roundtrip () =
  List.iter
    (fun f ->
       match Store.fault_of_string (Store.fault_to_string f) with
       | Some f' -> Alcotest.(check bool) "roundtrips" true (f = f')
       | None -> Alcotest.failf "unparsable: %s" (Store.fault_to_string f))
    [ Store.Torn_tail; Store.Lost_suffix 1; Store.Lost_suffix 7;
      Store.Corrupt_record ];
  List.iter
    (fun s ->
       match Store.fault_of_string s with
       | None -> ()
       | Some _ -> Alcotest.failf "garbage accepted: %s" s)
    [ ""; "lose"; "lose:"; "lose:0"; "lose:-2"; "lose:x"; "meteor" ]

let test_stats_count_operations () =
  let s = Store.create () in
  ignore (Store.open_ s);
  Store.append s "a";
  Store.append s "b";
  Store.sync s;
  Store.install_snapshot s "S";
  let st = Store.stats s in
  Alcotest.(check int) "appends" 2 st.Store.appends;
  Alcotest.(check int) "syncs" 1 st.Store.syncs;
  Alcotest.(check int) "snapshots" 1 st.Store.snapshots;
  Alcotest.(check int) "restarts" 0 st.Store.restarts

let test_pool_is_independent () =
  let pool = Store.pool ~n:3 in
  Alcotest.(check int) "size" 3 (Array.length pool);
  ignore (Store.open_ pool.(0));
  Store.append pool.(0) "only in 0";
  Alcotest.(check int) "others untouched" 0 (Store.log_length pool.(1))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "persist"
    [ ("wal",
       [ Alcotest.test_case "fresh open empty" `Quick test_fresh_open_is_empty;
         Alcotest.test_case "replay in order" `Quick
           test_append_replays_in_order;
         Alcotest.test_case "clean crash loses nothing" `Quick
           test_unsynced_tail_survives_clean_crash;
         Alcotest.test_case "snapshot truncates" `Quick
           test_snapshot_truncates_log ]);
      ("faults",
       [ Alcotest.test_case "torn tail" `Quick test_torn_tail_loses_newest;
         Alcotest.test_case "lost suffix" `Quick test_lost_suffix_drops_k;
         Alcotest.test_case "lost suffix clamped" `Quick
           test_lost_suffix_clamped_to_dirty;
         Alcotest.test_case "corrupt record hides tail" `Quick
           test_corrupt_record_hides_tail;
         Alcotest.test_case "clean tail immune" `Quick
           test_fault_with_clean_tail_is_noop;
         Alcotest.test_case "fifo, one per crash" `Quick
           test_faults_apply_fifo_one_per_crash;
         Alcotest.test_case "damage applied once" `Quick
           test_damage_not_double_counted;
         Alcotest.test_case "no fault on first open" `Quick
           test_no_fault_on_first_open ]);
      ("misc",
       [ Alcotest.test_case "fault text roundtrip" `Quick
           test_fault_text_roundtrip;
         Alcotest.test_case "stats" `Quick test_stats_count_operations;
         Alcotest.test_case "pool" `Quick test_pool_is_independent ]);
    ]
