(* Crash-safe soak campaigns (lib/soak, DESIGN.md §15).

   Covers the clock shim, the campaign-entry text codec, the framed
   journal file layer (including the committed binary fixtures generated
   by scripts/make_trace_fixtures.py — an independent Python encoder),
   kill-and-resume digest equivalence with QCheck-chosen interruption
   points and torn tails, wedged-run detection by event budget and by
   manual-clock wall deadline, the degradation ladder through abort,
   quarantine artifacts replaying from disk, and the decodable-prefix
   guarantee of trace sinks crashed mid-run. *)

module Clock = Harness.Clock
module Builder = Harness.Builder
module Sweep = Harness.Sweep
module Explorer = Explore.Explorer
module PJ = Persist.Journal
module SJ = Soak.Journal
module Campaign = Soak.Campaign
module Runner = Soak.Runner
module Report = Soak.Report

let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let read_file path = In_channel.with_open_bin path In_channel.input_all

let append_raw path bytes =
  let oc =
    Out_channel.open_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
  in
  Out_channel.output_string oc bytes;
  Out_channel.close oc

(* Fresh temp paths; the runner creates artifact directories itself. *)
let fresh_path suffix =
  let f = Filename.temp_file "ecsoak" suffix in
  Sys.remove f;
  f

(* ------------------------------------------------------------------ *)
(* Clock shim                                                          *)
(* ------------------------------------------------------------------ *)

let test_clock_manual () =
  let c = Clock.manual ~start:5 () in
  checki "start" 5 (Clock.now_ms c);
  Clock.advance c 10;
  checki "advanced" 15 (Clock.now_ms c);
  Clock.advance c (-3);
  checki "negative delta ignored" 15 (Clock.now_ms c);
  checki "elapsed" 12 (Clock.elapsed_ms c ~since:3);
  checki "elapsed clamps at zero" 0 (Clock.elapsed_ms c ~since:100)

let test_clock_monotonic () =
  let c = Clock.monotonic () in
  let a = Clock.now_ms c in
  let b = Clock.now_ms c in
  checkb "non-decreasing" true (b >= a);
  checkb "advance rejected" true
    (match Clock.advance c 1 with
     | () -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Campaign-entry codec                                                *)
(* ------------------------------------------------------------------ *)

let sample_config =
  { SJ.legs = [ "alg5" ];
    budget = 4;
    seed = 1;
    max_adversities = 4;
    event_budget = 1000;
    deadline_ms = 500;
    max_findings = 2;
    max_poisoned = 1;
    artifacts = "_artifacts/soak" }

let sample_entries =
  [ SJ.Config sample_config;
    SJ.Run { job = 0; digest = "0123456789abcdef0123456789abcdef" };
    SJ.Finding
      { job = 3;
        violations = [ "agreement: p1 diverges"; "exception: Boom" ];
        spec = [ "ecsim-spec v1"; "target alg5"; "seed 4" ];
        shrunk_ok = true;
        artifact = "finding-3.spec" };
    SJ.Poisoned
      { job = 1; kind = "stuck"; detail = "event budget exceeded (1000 events)" };
    SJ.Degrade { domains = 2; reason = "2 consecutive poisoned jobs" };
    SJ.Checkpoint { next = 2 } ]

let test_entry_roundtrip () =
  List.iter
    (fun e ->
       let payload = SJ.encode e in
       match SJ.decode payload with
       | Error m -> Alcotest.failf "decode failed: %s\npayload:\n%s" m payload
       | Ok e' -> checks "re-encode is identity" payload (SJ.encode e'))
    sample_entries;
  (* Field-level pins on the decoded forms. *)
  (match SJ.decode (SJ.encode (List.nth sample_entries 2)) with
   | Ok (SJ.Finding { job; violations; spec; shrunk_ok; artifact }) ->
     checki "finding job" 3 job;
     checkb "finding shrunk" true shrunk_ok;
     checks "finding artifact" "finding-3.spec" artifact;
     checki "violations kept" 2 (List.length violations);
     checki "spec kept" 3 (List.length spec)
   | _ -> Alcotest.fail "finding did not roundtrip");
  match SJ.decode (SJ.encode (List.hd sample_entries)) with
  | Ok (SJ.Config c) ->
    checkb "config roundtrip" true (c = sample_config)
  | _ -> Alcotest.fail "config did not roundtrip"

let test_entry_newline_normalization () =
  (* A violation message with embedded newlines (e.g. the spec context a
     Sweep worker error carries) must not corrupt record structure: it is
     flattened through the escape, and the decoded entry re-encodes to
     the same single record. *)
  let e =
    SJ.Poisoned
      { job = 7; kind = "worker"; detail = "seed 7: Failure\nspec line 2" }
  in
  let payload = SJ.encode e in
  checkb "payload is one line" false (contains payload "\n");
  match SJ.decode payload with
  | Ok (SJ.Poisoned { job; kind; detail }) ->
    checks "newline restored on decode" "seed 7: Failure\nspec line 2" detail;
    checks "stable under re-encode" payload
      (SJ.encode (SJ.Poisoned { job; kind; detail }))
  | _ -> Alcotest.fail "poisoned did not decode"

let test_entry_malformed () =
  List.iter
    (fun payload ->
       match SJ.decode payload with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "accepted malformed payload: %s" payload)
    [ ""; "frobnicate 1"; "config v2"; "run 3"; "run x y";
      "finding 1 shrunk=yes artifact=a"; "checkpoint ";
      "finding 1 shrunk=true artifact=a\nviolations 2\nonly-one" ]

(* Safe alphabets: characters json_escape leaves alone, so encode∘decode
   is the identity and re-encode comparison is exact. *)
let gen_token =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'z'; '0'; '9'; '.'; '_'; '-' ])
      (int_range 1 12))

let gen_text =
  QCheck.Gen.(
    string_size
      ~gen:(oneofl [ 'a'; 'Z'; ' '; ':'; '('; ')'; '5'; '/'; '-'; '\\'; '"'; '\n'; '\t' ])
      (int_range 0 24))

let gen_entry =
  QCheck.Gen.(
    oneof
      [ map2 (fun job digest -> SJ.Run { job; digest }) nat gen_token;
        map3
          (fun job kind detail -> SJ.Poisoned { job; kind; detail })
          nat gen_token gen_text;
        map2
          (fun domains reason -> SJ.Degrade { domains; reason })
          (int_range 0 8) gen_text;
        map (fun next -> SJ.Checkpoint { next }) nat;
        map2
          (fun (job, violations, spec) (shrunk_ok, artifact) ->
            SJ.Finding { job; violations; spec; shrunk_ok; artifact })
          (triple nat
             (list_size (int_range 0 3) gen_text)
             (list_size (int_range 0 4) gen_text))
          (pair bool gen_token);
        map3
          (fun legs budget seed ->
            SJ.Config { sample_config with SJ.legs = legs; budget; seed })
          (list_size (int_range 0 3) gen_token)
          nat nat ])

let qcheck_entry_roundtrip =
  QCheck.Test.make ~count:200 ~name:"entry codec: decode inverts encode"
    (QCheck.make gen_entry) (fun e ->
      let payload = SJ.encode e in
      match SJ.decode payload with
      | Error m -> QCheck.Test.fail_reportf "decode: %s\n%s" m payload
      | Ok e' -> SJ.encode e' = payload)

(* ------------------------------------------------------------------ *)
(* Framed journal file layer                                           *)
(* ------------------------------------------------------------------ *)

let jrecords = [ "alpha"; "beta with spaces"; String.make 120 'x'; "tail" ]

let write_journal records =
  let path = fresh_path ".journal" in
  let w = PJ.create path in
  List.iter (PJ.append w) records;
  PJ.close w;
  path

let test_journal_roundtrip () =
  let path = write_journal jrecords in
  match PJ.read path with
  | Error e -> Alcotest.failf "read: %s" e
  | Ok c ->
    checkb "no torn tail" false c.PJ.torn;
    checkb "records roundtrip" true (c.PJ.records = jrecords);
    Sys.remove path

let test_journal_bad_header () =
  let path = fresh_path ".journal" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "NOTAJRNL");
  (match PJ.read path with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "accepted bad magic");
  Sys.remove path;
  match PJ.read (fresh_path ".missing") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted missing file"

(* Frame boundaries of the journal above: magic, then 8 + |payload| per
   record.  Any truncation point must yield exactly the whole-frame
   prefix, with [torn] iff bytes dangle past the last boundary. *)
let qcheck_journal_truncation =
  let path = write_journal jrecords in
  let data = read_file path in
  Sys.remove path;
  let boundaries =
    (* cumulative offsets after the magic and after each frame *)
    let m = String.length PJ.magic in
    List.rev
      (List.fold_left
         (fun acc r -> (List.hd acc + 8 + String.length r) :: acc)
         [ m ] jrecords)
  in
  QCheck.Test.make ~count:60 ~name:"journal: any truncation leaves clean prefix"
    QCheck.(int_range 0 (String.length data))
    (fun cut ->
      let part = fresh_path ".part" in
      Out_channel.with_open_bin part (fun oc ->
          Out_channel.output_string oc (String.sub data 0 cut));
      let r = PJ.read part in
      Sys.remove part;
      if cut < String.length PJ.magic then
        match r with Error _ -> true | Ok _ -> false
      else
        match r with
        | Error e -> QCheck.Test.fail_reportf "cut=%d: %s" cut e
        | Ok c ->
          let whole =
            List.length (List.filter (fun b -> b <= cut) boundaries) - 1
          in
          let expect =
            List.filteri (fun i _ -> i < whole) jrecords
          in
          c.PJ.records = expect
          && c.PJ.torn = not (List.exists (fun b -> b = cut) boundaries))

let test_journal_resume_compacts () =
  let path = write_journal jrecords in
  (* Tear the tail: a partial frame a crashed writer left behind. *)
  append_raw path "\x40\x00\x00\x00AB";
  (match PJ.read path with
   | Ok c -> checkb "tear detected" true c.PJ.torn
   | Error e -> Alcotest.failf "read torn: %s" e);
  (match PJ.resume path with
   | Error e -> Alcotest.failf "resume: %s" e
   | Ok (c, w) ->
     checkb "clean prefix recovered" true (c.PJ.records = jrecords);
     PJ.append w "appended-after-crash";
     PJ.close w);
  match PJ.read path with
  | Error e -> Alcotest.failf "reread: %s" e
  | Ok c ->
    checkb "compacted" false c.PJ.torn;
    checkb "append lands after prefix" true
      (c.PJ.records = jrecords @ [ "appended-after-crash" ]);
    Sys.remove path

(* Committed fixtures: an independent Python encoder
   (scripts/make_trace_fixtures.py) pins the on-disk format. *)

let fixture_config =
  { sample_config with SJ.artifacts = "_artifacts/soak" }

let test_journal_fixture_ok () =
  match PJ.read "fixtures/journal_v1_ok.bin" with
  | Error e -> Alcotest.failf "fixture: %s" e
  | Ok c ->
    checkb "fixture clean" false c.PJ.torn;
    checki "fixture records" 4 (List.length c.PJ.records);
    let entries =
      List.map
        (fun p ->
           match SJ.decode p with
           | Ok e -> e
           | Error m -> Alcotest.failf "fixture record undecodable: %s" m)
        c.PJ.records
    in
    (* Cross-validate the OCaml encoder against the Python bytes. *)
    List.iter2
      (fun payload e -> checks "encoder matches fixture bytes" payload (SJ.encode e))
      c.PJ.records entries;
    (match entries with
     | [ SJ.Config cfg;
         SJ.Run { job; digest };
         SJ.Poisoned { kind; detail; _ };
         SJ.Checkpoint { next } ] ->
       checkb "config fields" true (cfg = fixture_config);
       checki "run job" 0 job;
       checks "run digest" "0123456789abcdef0123456789abcdef" digest;
       checks "poisoned kind" "stuck" kind;
       checks "poisoned detail" "event budget exceeded (1000 events)" detail;
       checki "checkpoint" 2 next
     | _ -> Alcotest.fail "unexpected fixture entry shapes")

let test_journal_fixture_torn () =
  match PJ.read "fixtures/journal_torn_tail.bin" with
  | Error e -> Alcotest.failf "fixture: %s" e
  | Ok c ->
    checkb "torn flagged" true c.PJ.torn;
    checki "whole records kept" 3 (List.length c.PJ.records)

let test_journal_fixture_bad_crc () =
  match PJ.read "fixtures/journal_bad_crc.bin" with
  | Error e -> Alcotest.failf "fixture: %s" e
  | Ok c ->
    checkb "corrupt frame stops the prefix" true c.PJ.torn;
    checki "clean prefix is the config" 1 (List.length c.PJ.records);
    match SJ.decode (List.hd c.PJ.records) with
    | Ok (SJ.Config _) -> ()
    | _ -> Alcotest.fail "prefix head is not the config"

(* ------------------------------------------------------------------ *)
(* Campaign: kill-and-resume equivalence                               *)
(* ------------------------------------------------------------------ *)

let faithful_leg = { Campaign.name = "alg5"; target = Explorer.default_target }

let mutant_leg =
  { Campaign.name = "mutant-drop-union";
    target =
      { Explorer.default_target with
        Explorer.mutation = Some Ec_core.Etob_omega.Drop_graph_union } }

let mk_config ~artifacts =
  { Campaign.legs = [ faithful_leg; mutant_leg ];
    budget = 6;
    seed = 7;
    max_adversities = 3;
    event_budget = 200_000;
    deadline_ms = 10_000;
    max_findings = 2;
    max_poisoned = 4;
    artifacts }

type baseline_data = {
  b_state : Campaign.state;
  b_digest : string;
  b_artifacts : string;
}

(* The uninterrupted reference campaign, run once and shared by the
   resume-equivalence property and the quarantine-artifact test. *)
let baseline =
  lazy
    (let artifacts = fresh_path ".artifacts" in
     let journal = fresh_path ".journal" in
     let config = mk_config ~artifacts in
     match Runner.start ~domains:2 ~journal config with
     | Error e -> Alcotest.failf "baseline campaign: %s" e
     | Ok { Runner.state; _ } ->
       Sys.remove journal;
       { b_state = state;
         b_digest = Campaign.coverage_digest state;
         b_artifacts = artifacts })

let finding_signature (st : Campaign.state) =
  List.map
    (function
      | SJ.Finding { job; shrunk_ok; spec; _ } -> (job, shrunk_ok, spec)
      | _ -> Alcotest.fail "non-finding in finding list")
    (Campaign.finding_list st)

(* The tentpole acceptance property: interrupt the campaign after a
   QCheck-chosen number of jobs (stop_after is the deterministic SIGKILL
   stand-in), optionally tear the journal tail, resume, and require the
   coverage digest and finding set byte-identical to the uninterrupted
   baseline — across different domain counts on each side. *)
let qcheck_resume_equivalence =
  let total =
    Campaign.total_jobs (mk_config ~artifacts:"unused")
  in
  QCheck.Test.make ~count:6 ~name:"kill-and-resume: digest-identical"
    QCheck.(pair (int_range 0 total) bool)
    (fun (k, tear) ->
      let b = Lazy.force baseline in
      let artifacts = fresh_path ".artifacts" in
      let journal = fresh_path ".journal" in
      let config = mk_config ~artifacts in
      (match Runner.start ~domains:1 ~stop_after:k ~journal config with
       | Error e -> QCheck.Test.fail_reportf "interrupted start: %s" e
       | Ok _ -> ());
      if tear then append_raw journal "\x2a\x00\x00\x00to";
      match Runner.resume_with ~domains:2 ~journal config with
      | Error e -> QCheck.Test.fail_reportf "resume (k=%d): %s" k e
      | Ok { Runner.state; _ } ->
        Sys.remove journal;
        if Campaign.coverage_digest state <> b.b_digest then
          QCheck.Test.fail_reportf "digest diverged at k=%d tear=%b" k tear
        else finding_signature state = finding_signature b.b_state)

let test_resume_completed_idempotent () =
  (* Resuming a finished campaign runs nothing and reports the same
     state; the journal survives the compaction rewrite.  Uses a
     catalogue-only leg because Runner.resume (the --resume FILE path)
     rebuilds the config from journaled leg names. *)
  let journal = fresh_path ".journal" in
  let config =
    { Campaign.legs = [ faithful_leg ];
      budget = 4;
      seed = 7;
      max_adversities = 3;
      event_budget = 200_000;
      deadline_ms = 10_000;
      max_findings = 2;
      max_poisoned = 4;
      artifacts = fresh_path ".artifacts" }
  in
  let digest =
    match Runner.start ~domains:2 ~journal config with
    | Error e -> Alcotest.failf "start: %s" e
    | Ok { Runner.state; _ } -> Campaign.coverage_digest state
  in
  (match Runner.resume ~domains:1 ~journal () with
   | Error e -> Alcotest.failf "resume: %s" e
   | Ok { Runner.state; _ } ->
     checks "digest unchanged" digest (Campaign.coverage_digest state);
     checkb "nothing left to run" true
       (Campaign.pending config state = []));
  Sys.remove journal

let test_resume_config_mismatch () =
  let artifacts = fresh_path ".artifacts" in
  let journal = fresh_path ".journal" in
  let config = mk_config ~artifacts in
  (match Runner.start ~domains:1 ~stop_after:2 ~journal config with
   | Error e -> Alcotest.failf "start: %s" e
   | Ok _ -> ());
  (match
     Runner.resume_with ~domains:1 ~journal
       { config with Campaign.seed = config.Campaign.seed + 1 }
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "accepted a mismatched resume config");
  Sys.remove journal

(* ------------------------------------------------------------------ *)
(* Quarantine artifacts                                                *)
(* ------------------------------------------------------------------ *)

let test_quarantine_artifacts_replay () =
  let b = Lazy.force baseline in
  let findings = Campaign.finding_list b.b_state in
  checkb "mutant leg produced findings" true (findings <> []);
  checki "stopped at max_findings" 2 (List.length findings);
  List.iter
    (function
      | SJ.Finding { spec; shrunk_ok; artifact; _ } ->
        checkb "shrunk repro replays" true shrunk_ok;
        checkb "artifact recorded" true (artifact <> "");
        let path = Filename.concat b.b_artifacts artifact in
        checkb "artifact on disk" true (Sys.file_exists path);
        (match Builder.read path with
         | Error e -> Alcotest.failf "artifact unparseable: %s" e
         | Ok repro ->
           let o = Builder.run ~digest:true ~catch:true repro in
           checkb "artifact still violates" true (o.Builder.violations <> []);
           (match Builder.recorded_digest (read_file path) with
            | Some d -> checks "artifact digest reproduces" d o.Builder.digest
            | None -> ()));
        (* The journaled spec block is itself a parseable repro. *)
        (match Builder.of_lines spec with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "journaled spec unparseable: %s" e)
      | _ -> ())
    findings

(* ------------------------------------------------------------------ *)
(* Wedged runs: event budget and wall deadline                         *)
(* ------------------------------------------------------------------ *)

let one_leg_config ~artifacts ~budget ~event_budget ~deadline_ms ~max_poisoned =
  { Campaign.legs = [ faithful_leg ];
    budget;
    seed = 7;
    max_adversities = 3;
    event_budget;
    deadline_ms;
    max_findings = 8;
    max_poisoned;
    artifacts }

(* An executor that wedges (spins on the guard) for selected seeds and
   otherwise defers to the real interpreter — the "deliberately wedged
   run" of the acceptance criteria, made deterministic. *)
let wedge_on pred : Runner.exec =
 fun ~guard target ~seed plan ->
  if pred seed then (
    try
      let rec spin () =
        guard ();
        spin ()
      in
      spin ()
    with Runner.Stuck m -> Runner.Wedged m)
  else Runner.default_exec ~guard target ~seed plan

let decode_journal path =
  match PJ.read path with
  | Error e -> Alcotest.failf "journal read: %s" e
  | Ok c ->
    List.map
      (fun p ->
         match SJ.decode p with
         | Ok e -> e
         | Error m -> Alcotest.failf "journal record: %s" m)
      c.PJ.records

let test_wedge_event_budget () =
  let journal = fresh_path ".journal" in
  let config =
    one_leg_config ~artifacts:(fresh_path ".artifacts") ~budget:6
      ~event_budget:50_000 ~deadline_ms:10_000 ~max_poisoned:4
  in
  (* engine seeds are 7..12; wedge the two divisible by 3 (9 and 12). *)
  let exec = wedge_on (fun seed -> seed mod 3 = 0) in
  match Runner.start ~domains:2 ~exec ~journal config with
  | Error e -> Alcotest.failf "campaign: %s" e
  | Ok { Runner.state; _ } ->
    checki "poisoned seeds" 2 state.Campaign.poisoned;
    checki "clean runs" 4 state.Campaign.clean;
    checkb "campaign completed" true (state.Campaign.aborted = None);
    checkb "no ladder step (non-consecutive)" true
      (state.Campaign.halvings = 0);
    checkb "clean verdict despite poison" true
      (Report.verdict state = Report.Clean);
    checki "exit code" 0 (Report.exit_code (Report.verdict state));
    let poisoned =
      List.filter_map
        (function
          | SJ.Poisoned { kind; detail; _ } -> Some (kind, detail)
          | _ -> None)
        (decode_journal journal)
    in
    checki "poisoned journaled" 2 (List.length poisoned);
    List.iter
      (fun (kind, detail) ->
         checks "stuck kind" "stuck" kind;
         checkb "budget named in detail" true
           (contains detail "event budget exceeded"))
      poisoned;
    Sys.remove journal

let test_wedge_wall_deadline () =
  let journal = fresh_path ".journal" in
  let config =
    one_leg_config ~artifacts:(fresh_path ".artifacts") ~budget:2
      ~event_budget:10_000_000 ~deadline_ms:1_000 ~max_poisoned:8
  in
  (* A manual clock the wedged run advances itself: the guard samples
     the clock every 256 events, so each spin trips the deadline without
     any real time passing — the deadline path, unit-tested without
     sleeping. *)
  let clock = Clock.manual () in
  let exec : Runner.exec =
   fun ~guard _target ~seed:_ _plan ->
    try
      let rec spin () =
        Clock.advance clock 100;
        guard ();
        spin ()
      in
      spin ()
    with Runner.Stuck m -> Runner.Wedged m
  in
  match Runner.start ~domains:1 ~clock ~exec ~journal config with
  | Error e -> Alcotest.failf "campaign: %s" e
  | Ok { Runner.state; _ } ->
    checki "both runs poisoned" 2 state.Campaign.poisoned;
    checkb "campaign completed" true (state.Campaign.aborted = None);
    List.iter
      (fun (kind, detail) ->
         checks "stuck kind" "stuck" kind;
         checkb "deadline named in detail" true
           (contains detail "wall deadline exceeded"))
      (List.filter_map
         (function
           | SJ.Poisoned { kind; detail; _ } -> Some (kind, detail)
           | _ -> None)
         (decode_journal journal));
    Sys.remove journal

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)
(* ------------------------------------------------------------------ *)

let test_degradation_ladder_abort () =
  let journal = fresh_path ".journal" in
  let config =
    one_leg_config ~artifacts:(fresh_path ".artifacts") ~budget:8
      ~event_budget:1_000 ~deadline_ms:10_000 ~max_poisoned:3
  in
  let exec = wedge_on (fun _ -> true) in
  (match Runner.start ~domains:4 ~exec ~journal config with
   | Error e -> Alcotest.failf "campaign: %s" e
   | Ok { Runner.state; _ } ->
     (* d0 = 4: jobs 0-1 poison (streak 2 halves concurrency to 2 and
        resets the streak), jobs 2-3 poison again and the fourth
        poisoned job exhausts max_poisoned = 3 before the streak can
        trigger a second halving. *)
     checki "poisoned before abort" 4 state.Campaign.poisoned;
     checki "ladder rungs taken" 1 state.Campaign.halvings;
     checkb "aborted" true (state.Campaign.aborted <> None);
     (match Report.verdict state with
      | Report.Aborted reason ->
        checkb "abort names the budget" true
          (contains reason "poisoned-seed budget exhausted")
      | _ -> Alcotest.fail "expected aborted verdict");
     checki "infra exit code" 2 (Report.exit_code (Report.verdict state));
     let degrades =
       List.filter_map
         (function SJ.Degrade { domains; _ } -> Some domains | _ -> None)
         (decode_journal journal)
     in
     checkb "halving then abort journaled" true (degrades = [ 2; 0 ]));
  (* Resuming an aborted campaign stays aborted without running jobs. *)
  (match Runner.resume_with ~domains:4 ~exec ~journal config with
   | Error e -> Alcotest.failf "resume: %s" e
   | Ok { Runner.state; _ } ->
     checkb "still aborted" true (state.Campaign.aborted <> None);
     checki "no extra jobs" 4 state.Campaign.poisoned;
     checkb "jobs remain unprocessed" true
       (Campaign.pending config state <> []));
  Sys.remove journal

(* ------------------------------------------------------------------ *)
(* Sweep worker-error context (satellite)                              *)
(* ------------------------------------------------------------------ *)

let test_sweep_error_context () =
  let context ~seed = Printf.sprintf "builder-spec-for-%d" seed in
  (match
     Sweep.map_safe ~domains:2 ~context ~seeds:[ 1; 2; 3 ] (fun ~seed ->
         if seed = 2 then failwith "boom" else seed)
   with
   | [ { Sweep.value = Ok 1; _ };
       { Sweep.value = Error e; seed = 2 };
       { Sweep.value = Ok 3; _ } ] ->
     checkb "names the seed" true (contains e "seed 2:");
     checkb "carries the exception" true (contains e "boom");
     checkb "carries the repro context" true (contains e "builder-spec-for-2")
   | _ -> Alcotest.fail "unexpected sweep shape");
  match
    Sweep.map_safe ~domains:1
      ~context:(fun ~seed:_ -> failwith "context exploded")
      ~seeds:[ 5 ]
      (fun ~seed:_ -> failwith "boom")
  with
  | [ { Sweep.value = Error e; _ } ] ->
    checkb "context crash swallowed" true (contains e "<context unavailable>")
  | _ -> Alcotest.fail "unexpected sweep shape"

(* ------------------------------------------------------------------ *)
(* Crashing trace sinks leave a decodable prefix (satellite)           *)
(* ------------------------------------------------------------------ *)

let crash_run_with_trace fmt path =
  let target = Explorer.default_target in
  let plan = Explorer.plan_at target ~seed:3 ~max_adversities:3 1 in
  let b = Explorer.builder_of target ~seed:3 plan in
  let b = { b with Builder.trace_out = Some (path, fmt) } in
  let events = ref 0 in
  let guard () =
    incr events;
    if !events >= 40 then raise (Runner.Stuck "simulated crash")
  in
  match Builder.run ~guard b with
  | _ -> Alcotest.fail "run was expected to crash"
  | exception Runner.Stuck _ -> ()

let test_sink_crash_binary_prefix () =
  let path = fresh_path ".trace.bin" in
  crash_run_with_trace Builder.Binary path;
  (match Persist.Frame.decode (read_file path) with
   | Error e ->
     Alcotest.failf "crashed binary trace undecodable: %s"
       (Format.asprintf "%a" Persist.Frame.pp_error e)
   | Ok items ->
     checkb "whole frames only, none torn" true
       (List.length (Persist.Frame.events items) > 0));
  Sys.remove path

let test_sink_crash_jsonl_prefix () =
  let path = fresh_path ".trace.jsonl" in
  crash_run_with_trace Builder.Jsonl path;
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> l <> "")
  in
  checkb "events flushed before crash" true (lines <> []);
  List.iter
    (fun l ->
       checkb "complete json object per line" true
         (String.length l >= 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  Sys.remove path

(* ------------------------------------------------------------------ *)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "soak"
    [ ( "clock",
        [ Alcotest.test_case "manual clock" `Quick test_clock_manual;
          Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic ] );
      ( "entry codec",
        [ Alcotest.test_case "roundtrip" `Quick test_entry_roundtrip;
          Alcotest.test_case "newline normalization" `Quick
            test_entry_newline_normalization;
          Alcotest.test_case "malformed payloads" `Quick test_entry_malformed ]
        @ qc [ qcheck_entry_roundtrip ] );
      ( "journal file",
        [ Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "bad header" `Quick test_journal_bad_header;
          Alcotest.test_case "resume compacts torn tail" `Quick
            test_journal_resume_compacts;
          Alcotest.test_case "fixture ok" `Quick test_journal_fixture_ok;
          Alcotest.test_case "fixture torn tail" `Quick
            test_journal_fixture_torn;
          Alcotest.test_case "fixture bad crc" `Quick
            test_journal_fixture_bad_crc ]
        @ qc [ qcheck_journal_truncation ] );
      ( "campaign resume",
        [ Alcotest.test_case "completed resume idempotent" `Quick
            test_resume_completed_idempotent;
          Alcotest.test_case "config mismatch rejected" `Quick
            test_resume_config_mismatch ]
        @ qc [ qcheck_resume_equivalence ] );
      ( "quarantine",
        [ Alcotest.test_case "artifacts replay" `Quick
            test_quarantine_artifacts_replay ] );
      ( "wedged runs",
        [ Alcotest.test_case "event budget" `Quick test_wedge_event_budget;
          Alcotest.test_case "wall deadline (manual clock)" `Quick
            test_wedge_wall_deadline ] );
      ( "degradation ladder",
        [ Alcotest.test_case "halve then abort" `Quick
            test_degradation_ladder_abort ] );
      ( "sweep context",
        [ Alcotest.test_case "worker error carries repro" `Quick
            test_sweep_error_context ] );
      ( "sink crash prefix",
        [ Alcotest.test_case "binary trace decodable" `Quick
            test_sink_crash_binary_prefix;
          Alcotest.test_case "jsonl trace complete lines" `Quick
            test_sink_crash_jsonl_prefix ] ) ]
