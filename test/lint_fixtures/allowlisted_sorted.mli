val keys : (string, 'a) Hashtbl.t -> string list
