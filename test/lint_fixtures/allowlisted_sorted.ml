(* Fixture: zero findings — the Hashtbl.fold below is covered by a
   sortedness justification, so it lands in the report's "allowed"
   section instead of failing the gate. *)
let keys tbl =
  (* detlint: sorted — accumulation order is discarded by the sort below *)
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
  |> List.sort String.compare
