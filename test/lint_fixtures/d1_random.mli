val jitter : unit -> int
