val newest : 'a -> 'a -> 'a
