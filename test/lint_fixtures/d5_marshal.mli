val save : out_channel -> 'a -> unit
