(* Fixture: exactly one D1 finding — unseeded randomness outside the
   blessed Simulator.Rng module. *)
let jitter () = Random.int 10
