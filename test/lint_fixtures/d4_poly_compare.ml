(* Fixture: exactly one D4 finding — polymorphic compare where a
   per-type compare is required. *)
let newest a b = if Stdlib.compare a b >= 0 then a else b
