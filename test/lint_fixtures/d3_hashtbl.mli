val total : (string, int) Hashtbl.t -> int
