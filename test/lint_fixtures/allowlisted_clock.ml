(* Fixture: zero findings — the wall-clock read below carries the same
   justified D2 allow as Harness.Clock's single sanctioned call site
   (deadline detection against real time), so it lands in the report's
   "allowed" section instead of failing the gate.  Raw wall-clock reads
   without the directive still fail: see d2_wallclock.ml. *)
let sample_ms () =
  (* detlint: allow D2 stuck-run deadline clock: gates waiting only, never run results *)
  int_of_float (Unix.gettimeofday () *. 1000.)
