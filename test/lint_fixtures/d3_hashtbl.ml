(* Fixture: exactly one D3 finding — unordered Hashtbl iteration with no
   sortedness justification.  (That the sum happens to be commutative is
   precisely what the justification comment is for.) *)
let total tbl =
  let sum = ref 0 in
  Hashtbl.iter (fun _ v -> sum := !sum + v) tbl;
  !sum
