val now : unit -> float
