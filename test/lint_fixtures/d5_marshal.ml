(* Fixture: exactly one D5 finding — Marshal outside lib/persist. *)
let save oc v = Marshal.to_channel oc v []
