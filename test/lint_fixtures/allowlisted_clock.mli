val sample_ms : unit -> int
