(* Fixture: exactly one D2 finding — wall-clock read outside bench/. *)
let now () = Unix.gettimeofday ()
