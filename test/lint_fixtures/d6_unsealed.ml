(* Fixture: exactly one D6 finding — no sibling .mli seals this module. *)
let helper x = x + 1
