(* A4 fixture: Obj.magic in a hot function — the escape defeats the
   allocation analysis for everything it touches. *)

let[@alloc.zero] hot_magic x = (Obj.magic x : int)
