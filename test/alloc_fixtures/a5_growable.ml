(* A5 fixture: growable-structure mutation in a hot function — the
   Buffer may double (allocate and copy) on any call. *)

let[@alloc.zero] hot_log buf c = Buffer.add_char buf c
