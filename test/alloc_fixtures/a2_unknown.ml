(* A2 fixture: a hot function calling through a function parameter —
   the analyzer cannot see the callee, so its allocation behavior is
   unknown. *)

let[@alloc.zero] hot_apply f x = f x
