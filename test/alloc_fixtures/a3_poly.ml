(* A3 fixture: structural equality at a non-immediate type — compiles
   to a polymorphic-compare call (String.equal is the fix). *)

let[@alloc.zero] hot_equal (a : string) (b : string) = a = b
