(* The justified-allow fixture: same A5 shape as a5_growable.ml, but
   with a reasoned directive — the gate passes and the suppression is
   reported with its justification. *)

let[@alloc.zero] hot_grow buf c =
  (* detlint: allow A5 buffer preallocated to worst-case size at creation; never grows in steady state *)
  Buffer.add_char buf c
