(* A1 fixture: direct heap allocation in a hot function — the result
   pair is a fresh two-word block on every call. *)

let[@alloc.zero] hot_pair x = (x, x + 1)
