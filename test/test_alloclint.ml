(* Self-tests for alloclint, the typedtree allocation analyzer
   (DESIGN.md §17).  Mirrors test_lint.ml's structure: a one-rule-per-
   fixture corpus under alloc_fixtures/ is scanned and byte-compared
   against a committed golden JSON report, the repository's own lib
   tree must scan clean under the default hot-path registry, and the
   stale-registry hard error is exercised directly.

   The fixture corpus is built as the [alloc_fixtures] library (cmt
   files land under its .objs/byte directory inside the build tree),
   and the fixture sources are copied next to it by dune, so both the
   typedtrees and the allow directives resolve relative to the test's
   working directory. *)

open Lint

let fixture_build = "alloc_fixtures/.alloc_fixtures.objs/byte"
let fixture_roots = [ "test/alloc_fixtures" ]

let scan_fixtures () =
  match
    Alloc_driver.scan ~registry:[] ~build_dir:fixture_build ~source_root:".."
      fixture_roots
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "alloclint fixture scan errored: %s" e

(* Each fixture file violates exactly one A rule; any finding from that
   file at a different rule is a classification bug. *)
let fixture_expectations =
  [
    ("test/alloc_fixtures/a1_direct.ml", "A1");
    ("test/alloc_fixtures/a2_unknown.ml", "A2");
    ("test/alloc_fixtures/a3_poly.ml", "A3");
    ("test/alloc_fixtures/a4_obj.ml", "A4");
    ("test/alloc_fixtures/a5_growable.ml", "A5");
  ]

let test_one_rule_per_fixture () =
  let r = scan_fixtures () in
  List.iter
    (fun (file, rule) ->
      let in_file =
        List.filter
          (fun (f : Finding.t) -> String.equal f.file file)
          r.Alloc_driver.findings
      in
      Alcotest.(check bool) (file ^ ": fixture produced a finding") true
        (in_file <> []);
      List.iter
        (fun (f : Finding.t) ->
          Alcotest.(check string)
            (Printf.sprintf "%s:%d rule" file f.line)
            rule (Finding.rule_id f.rule))
        in_file)
    fixture_expectations

let test_allowlisted_fixture_suppressed () =
  let r = scan_fixtures () in
  List.iter
    (fun (f : Finding.t) ->
      if String.equal f.file "test/alloc_fixtures/allowlisted_growable.ml" then
        Alcotest.failf "allow directive did not suppress %s:%d" f.file f.line)
    r.Alloc_driver.findings;
  Alcotest.(check int) "one suppression recorded" 1
    (List.length r.Alloc_driver.allowed);
  let f, why = List.hd r.Alloc_driver.allowed in
  Alcotest.(check string) "suppressed rule" "A5" (Finding.rule_id f.rule);
  Alcotest.(check bool) "justification preserved" true
    (String.length why > 10)

let test_attribute_roots_resolved () =
  let r = scan_fixtures () in
  Alcotest.(check (list string))
    "every [@alloc.zero] binding became a hot root"
    [
      "Alloc_fixtures.A1_direct.hot_pair";
      "Alloc_fixtures.A2_unknown.hot_apply";
      "Alloc_fixtures.A3_poly.hot_equal";
      "Alloc_fixtures.A4_obj.hot_magic";
      "Alloc_fixtures.A5_growable.hot_log";
      "Alloc_fixtures.Allowlisted_growable.hot_grow";
    ]
    r.Alloc_driver.hot_roots

let test_fixtures_match_golden () =
  let r = scan_fixtures () in
  let golden =
    In_channel.with_open_bin "alloc_fixtures/golden_report.json"
      In_channel.input_all
  in
  Alcotest.(check string) "golden JSON report" golden (Alloc_report.to_json r)

let test_stale_registry_is_hard_error () =
  match
    Alloc_driver.scan
      ~registry:[ "Alloc_fixtures.No_such_module.no_such_fn" ]
      ~build_dir:fixture_build ~source_root:".." fixture_roots
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale registry entry should fail the scan"

(* The repository's own hot path must scan clean: every allocation on
   it is either eliminated or carries a justified allow.  Runs against
   the sibling build tree; skipped when the layout is unavailable. *)
let test_real_tree_scans_clean () =
  if not (Sys.file_exists "../lib" && Sys.is_directory "../lib") then
    Alcotest.skip ()
  else
    match Alloc_driver.scan ~build_dir:".." ~source_root:".." [ "lib" ] with
    | Error e -> Alcotest.failf "alloclint real-tree scan errored: %s" e
    | Ok r ->
        List.iter
          (fun (f : Finding.t) ->
            Format.eprintf "unexpected finding: %a@." Finding.pp_human f)
          r.Alloc_driver.findings;
        Alcotest.(check int) "no unjustified hot-path findings" 0
          (List.length r.Alloc_driver.findings);
        Alcotest.(check bool) "registry + attribute roots all resolved" true
          (List.length r.Alloc_driver.hot_roots >= 13);
        Alcotest.(check bool) "justified allows are in force" true
          (List.length r.Alloc_driver.allowed >= 20)

let () =
  Alcotest.run "alloclint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "one rule per fixture" `Quick
            test_one_rule_per_fixture;
          Alcotest.test_case "allow directive suppresses" `Quick
            test_allowlisted_fixture_suppressed;
          Alcotest.test_case "attribute roots resolved" `Quick
            test_attribute_roots_resolved;
          Alcotest.test_case "golden report byte-stable" `Quick
            test_fixtures_match_golden;
        ] );
      ( "driver",
        [
          Alcotest.test_case "stale registry hard error" `Quick
            test_stale_registry_is_hard_error;
          Alcotest.test_case "repository hot path scans clean" `Quick
            test_real_tree_scans_clean;
        ] );
    ]
