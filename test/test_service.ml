(* Tests for the closed-loop client service layer (DESIGN.md §16): spec
   parsing and generators, the endpoint/client robustness loop over real
   stacks, replica-side dedup, metrics, and the E22 availability gates. *)

open Simulator
open Replication
module Spec = Harness.Service_spec
module Builder = Harness.Builder

(* ------------------------------------------------------------------ *)
(* Spec text form                                                      *)
(* ------------------------------------------------------------------ *)

(* The builder's tokenizer, in miniature: whitespace-separated k=v. *)
let fields_of_string s =
  String.split_on_char ' ' s
  |> List.filter (fun tok -> tok <> "")
  |> List.map (fun tok ->
         match String.index_opt tok '=' with
         | Some i ->
           ( String.sub tok 0 i,
             String.sub tok (i + 1) (String.length tok - i - 1) )
         | None -> (tok, ""))

let reparse spec = Spec.of_fields (fields_of_string (Spec.to_string spec))

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_spec_default_roundtrip () =
  match reparse Spec.default with
  | Ok spec -> Alcotest.(check bool) "default roundtrips" true (spec = Spec.default)
  | Error msg -> Alcotest.failf "default spec did not reparse: %s" msg

let test_spec_field_errors () =
  let expect_error fields fragment =
    match Spec.of_fields fields with
    | Ok _ -> Alcotest.failf "fields parsed despite %s" fragment
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" msg fragment)
        true
        (contains_substring msg fragment)
  in
  expect_error [ ("clients", "zero") ] "integer";
  expect_error [ ("clients", "0") ] "clients";
  expect_error [ ("arrival", "sometimes") ] "arrival";
  expect_error [ ("backoff", "8:2") ] "backoff cap";
  expect_error [ ("skew", "140") ] "percentage";
  expect_error [ ("mood", "strong") ] "unknown service field"

let prop_spec_roundtrip =
  QCheck.Test.make ~count:200 ~name:"service spec roundtrips through its text form"
    Qgen.service_spec_arb
    (fun spec ->
      match reparse spec with Ok spec' -> spec' = spec | Error _ -> false)

let prop_generated_specs_valid =
  QCheck.Test.make ~count:200 ~name:"generated service specs always validate"
    Qgen.service_spec_arb
    (fun spec ->
      match Spec.validate spec with Ok _ -> true | Error _ -> false)

let test_sampled_specs_deterministic () =
  let a = Service.Experiment.sample_specs ~seed:3 ~count:4 in
  let b = Service.Experiment.sample_specs ~seed:3 ~count:4 in
  Alcotest.(check bool) "same seed, same samples" true (a = b)

(* ------------------------------------------------------------------ *)
(* Builder integration: the service header line                        *)
(* ------------------------------------------------------------------ *)

let base_builder () =
  Builder.create ~seed:7 ~n:3 ~deadline:120
    (Builder.Etob Harness.Scenario.Algorithm_5)

let test_builder_service_roundtrip () =
  let spec = { Spec.default with Spec.clients = 2; skew_pct = 80 } in
  let b = { (base_builder ()) with Builder.service = Some spec } in
  match Builder.of_lines (Builder.to_lines b) with
  | Error msg -> Alcotest.failf "reparse: %s" msg
  | Ok b' ->
    Alcotest.(check bool) "service spec survives the text form" true
      (b'.Builder.service = Some spec);
    Alcotest.(check bool) "whole builder roundtrips" true (b = b')

(* A malformed service line is rejected with its line number, like every
   other spec shape. *)
let test_builder_service_error_names_line () =
  let b = { (base_builder ()) with Builder.service = Some Spec.default } in
  let lines = Builder.to_lines b in
  let lineno =
    1
    + (match
         List.find_index
           (fun l -> String.length l >= 8 && String.sub l 0 8 = "service ")
           lines
       with
      | Some i -> i
      | None -> Alcotest.fail "no service line emitted")
  in
  let check_error corrupted fragment =
    let lines' =
      List.mapi (fun i l -> if i = lineno - 1 then corrupted else l) lines
    in
    match Builder.of_lines lines' with
    | Ok _ -> Alcotest.failf "malformed %S parsed" corrupted
    | Error msg ->
      let want = Printf.sprintf "line %d" lineno in
      Alcotest.(check bool)
        (Printf.sprintf "%S names %S" msg want)
        true
        (contains_substring msg want && contains_substring msg fragment)
  in
  check_error "service clients=zero" "integer";
  check_error "service mood=great" "unknown service field";
  check_error "service backoff=9:2" "backoff cap"

(* ------------------------------------------------------------------ *)
(* Dedup machine                                                       *)
(* ------------------------------------------------------------------ *)

let wput ~client ~rid v = Command.wput ~client ~rid "k" v

let test_dedup_filter () =
  let log =
    [ wput ~client:0 ~rid:0 "a"; Command.put "x" "y";
      wput ~client:1 ~rid:0 "b"; wput ~client:0 ~rid:0 "dup";
      wput ~client:0 ~rid:1 "c"; wput ~client:1 ~rid:0 "dup2" ]
  in
  Alcotest.(check int) "two duplicates" 2 (Dedup.duplicates log);
  let kept = Dedup.filter log in
  Alcotest.(check int) "first occurrences kept" 4 (List.length kept);
  (* Same (client, rid) from different clients are distinct requests. *)
  Alcotest.(check bool) "provenance-free commands pass through" true
    (List.exists (fun c -> Command.rid_of c = None) kept)

let test_dedup_machine_matches_replay () =
  let log =
    [ wput ~client:2 ~rid:5 "v1"; wput ~client:2 ~rid:5 "v-dup";
      Command.put "p" "q"; wput ~client:3 ~rid:5 "w1";
      wput ~client:2 ~rid:6 "v2"; wput ~client:2 ~rid:5 "v-dup2" ]
  in
  let st = Machines.replay (module Service.Runner.Dkv) log in
  let replayed = Machines.replay (module Machines.Kv) (Dedup.filter log) in
  Alcotest.(check string) "inner state = filtered replay"
    (Machines.Kv.digest replayed)
    (Machines.Kv.digest (Service.Runner.Dkv.inner st));
  Alcotest.(check int) "suppressed = duplicates" (Dedup.duplicates log)
    (Service.Runner.Dkv.suppressed st);
  (* The duplicate writes were dropped, not last-wins applied. *)
  Alcotest.(check bool) "first occurrence wins" true
    (Machines.String_map.find_opt "k" (Service.Runner.Dkv.inner st) <> Some "v-dup2")

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let completed ~client ~rid ~ok ~latency ~endpoint =
  Service.Wire.Completed
    { client; rid; ok; overloaded = false; write = true; strong = true;
      latency; attempts = 1; endpoint }

let test_metrics_windows_and_probe () =
  let trace = Trace.create ~n:4 in
  let out ~time o = Trace.record_output trace ~time ~proc:3 o in
  (* Started at 8 (window 0), 23 (window 2), 29 (window 2). *)
  out ~time:12 (completed ~client:3 ~rid:0 ~ok:true ~latency:4 ~endpoint:0);
  out ~time:25 (completed ~client:3 ~rid:1 ~ok:false ~latency:2 ~endpoint:1);
  out ~time:29 (completed ~client:3 ~rid:2 ~ok:true ~latency:0 ~endpoint:1);
  let spec = { Spec.default with Spec.window = 10 } in
  let m = Service.Metrics.of_trace ~spec ~horizon:30 trace in
  Alcotest.(check int) "requests" 3 m.Service.Metrics.requests;
  Alcotest.(check int) "ok" 2 m.Service.Metrics.ok;
  (match m.Service.Metrics.windows with
   | [ w0; w1; w2 ] ->
     Alcotest.(check (pair int int)) "window 0" (1, 1)
       (w0.Service.Metrics.w_started, w0.Service.Metrics.w_ok);
     Alcotest.(check (pair int int)) "window 1" (0, 0)
       (w1.Service.Metrics.w_started, w1.Service.Metrics.w_ok);
     Alcotest.(check (pair int int)) "window 2" (2, 1)
       (w2.Service.Metrics.w_started, w2.Service.Metrics.w_ok)
   | ws -> Alcotest.failf "expected 3 windows, got %d" (List.length ws));
  (* The endpoint probe keys by start time and final endpoint. *)
  Alcotest.(check (pair int int)) "endpoint-1 requests in [20,30)" (2, 1)
    (Service.Metrics.availability_in trace ~endpoints:[ 1 ] ~from_time:20
       ~until_time:30);
  Alcotest.(check (pair int int)) "endpoint-0 requests in [0,10)" (1, 1)
    (Service.Metrics.availability_in trace ~endpoints:[ 0 ] ~from_time:0
       ~until_time:10)

(* ------------------------------------------------------------------ *)
(* The runner over real stacks                                         *)
(* ------------------------------------------------------------------ *)

let ff_setup ?(seed = 11) ?(n = 3) ?(deadline = 150) () =
  { (Harness.Scenario.default ~n ~deadline) with Harness.Scenario.seed = seed }

let ff_spec = { Spec.default with Spec.clients = 3; req_deadline = 20 }

let test_failure_free_all_ok () =
  List.iter
    (fun impl ->
      let o = Service.Runner.run ~setup:(ff_setup ()) ~spec:ff_spec ~impl in
      let r = o.Service.Runner.report in
      Alcotest.(check bool) "did work" true (r.Service.Metrics.requests > 10);
      Alcotest.(check int) "no failures" 0 r.Service.Metrics.failed;
      Alcotest.(check int) "no migrations" 0 r.Service.Metrics.migrations;
      Alcotest.(check int) "no breaker trips" 0 r.Service.Metrics.breaker_opens;
      Alcotest.(check bool) "dedup holds" true o.Service.Runner.dedup_ok)
    [ Harness.Scenario.Algorithm_5; Harness.Scenario.Paxos_baseline ]

let test_run_deterministic () =
  let go () =
    Service.Runner.run ~setup:(ff_setup ()) ~spec:ff_spec
      ~impl:Harness.Scenario.Algorithm_5
  in
  let a = go () in
  let b = go () in
  Alcotest.(check string) "same spec + seed, same digest"
    a.Service.Runner.digest b.Service.Runner.digest;
  let c =
    Service.Runner.run ~setup:(ff_setup ~seed:12 ()) ~spec:ff_spec
      ~impl:Harness.Scenario.Algorithm_5
  in
  Alcotest.(check bool) "different seed, different trace" true
    (a.Service.Runner.digest <> c.Service.Runner.digest)

let test_crash_triggers_migration () =
  let setup =
    { (ff_setup ~deadline:220 ()) with
      Harness.Scenario.pattern = Failures.crash_at (Failures.none ~n:3) 1 60 }
  in
  let spec = { ff_spec with Spec.req_deadline = 10; migrate_after = 2 } in
  let o =
    Service.Runner.run ~setup ~spec ~impl:Harness.Scenario.Algorithm_5
  in
  let r = o.Service.Runner.report in
  Alcotest.(check bool) "the pinned client migrated" true
    (r.Service.Metrics.migrations >= 1);
  Alcotest.(check bool) "work continued after the crash" true
    (r.Service.Metrics.ok > 20);
  Alcotest.(check bool) "dedup holds across migration" true
    o.Service.Runner.dedup_ok;
  let migrated_clients =
    List.filter_map
      (fun (_, _, out) ->
        match out with
        | Service.Wire.Migrated { client; from_endpoint; _ } ->
          Some (client, from_endpoint)
        | _ -> None)
      (Trace.outputs o.Service.Runner.trace)
  in
  Alcotest.(check bool) "migration left the crashed endpoint" true
    (List.exists (fun (_, from) -> from = 1) migrated_clients)

let test_admission_control_sheds () =
  let setup = ff_setup ~n:2 ~deadline:200 () in
  let spec =
    { Spec.default with
      Spec.clients = 6;
      arrival = Spec.Bursty { burst = 5; gap = 12 };
      write_pct = 100;
      req_deadline = 30;
      retries = 2;
      queue_limit = 1;
      breaker_k = 6;
      breaker_cooldown = 40 }
  in
  let o = Service.Runner.run ~setup ~spec ~impl:Harness.Scenario.Algorithm_5 in
  let r = o.Service.Runner.report in
  Alcotest.(check bool) "overload sheds load" true (r.Service.Metrics.sheds > 0);
  Alcotest.(check bool) "shed output recorded" true
    (List.exists
       (fun (_, _, out) ->
         match out with Service.Wire.Shed _ -> true | _ -> false)
       (Trace.outputs o.Service.Runner.trace));
  Alcotest.(check bool) "dedup holds under overload" true
    o.Service.Runner.dedup_ok

let test_runner_rejects_alg_1_over_4 () =
  match
    Service.Runner.run ~setup:(ff_setup ()) ~spec:ff_spec
      ~impl:Harness.Scenario.Algorithm_1_over_4
  with
  | _ -> Alcotest.fail "Algorithm_1_over_4 accepted"
  | exception Invalid_argument _ -> ()

let test_run_builder () =
  let b = base_builder () in
  (match Service.Runner.run_builder b with
   | Ok _ -> Alcotest.fail "builder without a service line ran"
   | Error msg ->
     Alcotest.(check bool) "error mentions the service line" true
       (contains_substring msg "service"));
  let b = { b with Builder.service = Some ff_spec } in
  match Service.Runner.run_builder b with
  | Error msg -> Alcotest.failf "service builder failed: %s" msg
  | Ok o ->
    Alcotest.(check bool) "spec-file run does work" true
      (o.Service.Runner.report.Service.Metrics.requests > 0)

(* ------------------------------------------------------------------ *)
(* E22: the availability experiment and its gates                      *)
(* ------------------------------------------------------------------ *)

let test_e22_gates_pass () =
  let result = Service.Experiment.run () in
  List.iter
    (fun (g : Service.Experiment.gate) ->
      Alcotest.(check bool)
        (Printf.sprintf "gate %s: %s" g.Service.Experiment.g_name
           g.Service.Experiment.g_detail)
        true g.Service.Experiment.g_pass)
    result.Service.Experiment.gates;
  (* The gap comes from degradation: the ETOB side actually downgraded to
     speculative service behind an open breaker. *)
  let er = result.Service.Experiment.etob.s_outcome.Service.Runner.report in
  Alcotest.(check bool) "etob breaker opened" true
    (er.Service.Metrics.breaker_opens > 0);
  Alcotest.(check bool) "etob served weak successes" true
    (er.Service.Metrics.weak_ok > 0);
  let pr = result.Service.Experiment.paxos.s_outcome.Service.Runner.report in
  Alcotest.(check bool) "paxos side completed requests" true
    (pr.Service.Metrics.requests > 0)

(* ------------------------------------------------------------------ *)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest
      [ prop_spec_roundtrip; prop_generated_specs_valid ]
  in
  Alcotest.run "service"
    [ ("spec",
       [ Alcotest.test_case "default roundtrips" `Quick test_spec_default_roundtrip;
         Alcotest.test_case "field errors are named" `Quick test_spec_field_errors;
         Alcotest.test_case "sampling is deterministic" `Quick
           test_sampled_specs_deterministic ]
       @ qc);
      ("builder",
       [ Alcotest.test_case "service line roundtrips" `Quick
           test_builder_service_roundtrip;
         Alcotest.test_case "parse errors name the line" `Quick
           test_builder_service_error_names_line ]);
      ("dedup",
       [ Alcotest.test_case "filter keeps first occurrences" `Quick
           test_dedup_filter;
         Alcotest.test_case "machine matches filtered replay" `Quick
           test_dedup_machine_matches_replay ]);
      ("metrics",
       [ Alcotest.test_case "windows and endpoint probe" `Quick
           test_metrics_windows_and_probe ]);
      ("runner",
       [ Alcotest.test_case "failure-free: everything succeeds" `Quick
           test_failure_free_all_ok;
         Alcotest.test_case "deterministic digest" `Quick test_run_deterministic;
         Alcotest.test_case "crash triggers migration" `Quick
           test_crash_triggers_migration;
         Alcotest.test_case "admission control sheds" `Quick
           test_admission_control_sheds;
         Alcotest.test_case "rejects alg 1/4" `Quick
           test_runner_rejects_alg_1_over_4;
         Alcotest.test_case "runs from a spec file" `Quick test_run_builder ]);
      ("experiment",
       [ Alcotest.test_case "E22 gates pass" `Quick test_e22_gates_pass ]);
    ]
