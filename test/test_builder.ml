(* The builder refactor's contract, tested three ways:

   - differential: running a declarative builder is byte-identical to the
     raw [Stacks.run_*] wiring it replaced — on the committed golden
     traces and on the anti-entropy and crash-recovery stacks;
   - text form: [of_lines (to_lines b) = b] over generated builders, and
     a committed pre-refactor repro file replays through
     [Builder.of_string] to its recorded digest;
   - parse errors: every adversity spec shape rejects malformed lines
     with an error naming the offence. *)

open Simulator
module Builder = Harness.Builder
module Adversity = Harness.Adversity
module Stacks = Harness.Stacks

let digest_of_trace trace =
  Digest.to_hex (Digest.string (Format.asprintf "%a" Trace.pp trace))

let run_digest b =
  let o = Builder.run ~digest:true b in
  o.Builder.digest

(* ------------------------------------------------------------------ *)
(* Differential: builder vs the raw stack wiring                       *)
(* ------------------------------------------------------------------ *)

(* Same construction as test_harness's golden-trace test, declaratively:
   the builder path must reproduce the committed pre-refactor trace byte
   for byte. *)
let test_golden_stable_via_builder () =
  let b =
    { (Builder.create ~n:3 ~deadline:120
         ~delay:(Builder.Uniform { min_d = 1; max_d = 4 })
         (Builder.Etob Stacks.Algorithm_5))
      with
      Builder.workload = Builder.Posts { count = 6; from_time = 8; every = 5 }
    }
  in
  let o = Builder.run b in
  let trace = Option.get o.Builder.trace in
  let got = Format.asprintf "%a" Trace.pp trace in
  let golden =
    In_channel.with_open_bin "golden_stable_trace.txt" In_channel.input_all
  in
  Alcotest.(check bool) "golden stable trace byte-identical" true (got = golden)

(* The crash golden, with the crash supplied as an adversity-plan clause
   rather than a hand-built failure pattern. *)
let test_golden_crash_via_builder () =
  let b =
    { (Builder.create ~seed:13 ~n:4 ~deadline:160
         ~delay:(Builder.Uniform { min_d = 1; max_d = 4 })
         (Builder.Etob Stacks.Algorithm_5))
      with
      Builder.workload = Builder.Posts { count = 8; from_time = 6; every = 6 };
      plan = [ Adversity.Crash { proc = 3; at = 40 } ]
    }
  in
  let o = Builder.run b in
  let trace = Option.get o.Builder.trace in
  let got = Format.asprintf "%a" Trace.pp trace in
  let golden =
    In_channel.with_open_bin "golden_crash_trace.txt" In_channel.input_all
  in
  Alcotest.(check bool) "golden crash trace byte-identical" true (got = golden)

(* Anti-entropy stack under a lossy partition: [Builder.run] on [Etob_ae]
   vs calling [Stacks.run_etob_ae] on the applied setup directly. *)
let test_ae_differential () =
  let plan =
    [ Adversity.Lossy_partition { left = [ 0; 1 ]; from_time = 20; until_time = 80 } ]
  in
  let decl =
    { (Builder.create ~seed:7 ~n:4 ~deadline:200
         ~delay:(Builder.Uniform { min_d = 1; max_d = 3 })
         Builder.Etob_ae)
      with
      Builder.workload = Builder.Posts { count = 8; from_time = 8; every = 6 };
      plan
    }
  in
  let direct =
    let setup =
      Adversity.apply plan
        { (Stacks.default ~n:4 ~deadline:200) with
          seed = 7;
          delay = Net.uniform ~min:1 ~max:3 }
    in
    let inputs = Stacks.spread_posts ~n:4 ~count:8 ~from_time:8 ~every:6 in
    let trace, _ = Stacks.run_etob_ae ~inputs setup in
    digest_of_trace trace
  in
  Alcotest.(check string) "ae stack digest" direct (run_digest decl)

(* Crash-recovery stack under a downtime window: [Builder.run] on
   [Recoverable] vs [Stacks.run_recoverable] directly. *)
let test_recoverable_differential () =
  let plan =
    [ Adversity.Crash_recover { proc = 1; at = 50; recover_at = 120 } ]
  in
  let decl =
    { (Builder.create ~seed:3 ~n:4 ~deadline:300
         ~delay:(Builder.Uniform { min_d = 1; max_d = 3 })
         (Builder.Recoverable { ae = false }))
      with
      Builder.workload = Builder.Posts { count = 12; from_time = 8; every = 20 };
      plan
    }
  in
  let direct =
    let setup =
      Adversity.apply plan
        { (Stacks.default ~n:4 ~deadline:300) with
          seed = 3;
          delay = Net.uniform ~min:1 ~max:3 }
    in
    let inputs = Stacks.spread_posts ~n:4 ~count:12 ~from_time:8 ~every:20 in
    let trace, _, _ = Stacks.run_recoverable ~inputs setup in
    digest_of_trace trace
  in
  Alcotest.(check string) "recoverable stack digest" direct (run_digest decl)

(* The facade keeps its word: Scenario.run_etob (now a builder preset
   inside) still equals the raw Stacks path on a non-trivial setup. *)
let test_scenario_facade_differential () =
  let setup =
    { (Stacks.default ~n:4 ~deadline:200) with
      seed = 11;
      delay = Net.uniform ~min:1 ~max:5;
      omega = Stacks.Elected { initial_timeout = 5 } }
  in
  let inputs = Stacks.spread_posts ~n:4 ~count:8 ~from_time:5 ~every:4 in
  let via_scenario =
    Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5
  in
  let via_stacks = Stacks.run_etob ~inputs setup Stacks.Algorithm_5 in
  Alcotest.(check string) "facade digest"
    (digest_of_trace via_stacks) (digest_of_trace via_scenario)

(* ------------------------------------------------------------------ *)
(* Text form                                                           *)
(* ------------------------------------------------------------------ *)

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"builder: of_lines (to_lines b) = b" ~count:300
    Builder.arbitrary (fun b ->
        match Builder.of_lines (Builder.to_lines b) with
        | Ok b' -> b' = b
        | Error msg -> QCheck.Test.fail_reportf "parse failed: %s" msg)

(* A committed pre-refactor explorer repro file replays through the
   builder path to its recorded digest and still shows the violation. *)
let test_legacy_repro_via_builder () =
  let content =
    In_channel.with_open_text "fixtures/legacy_skip_dep.repro"
      In_channel.input_all
  in
  match Builder.of_string content with
  | Error msg -> Alcotest.failf "legacy parse: %s" msg
  | Ok b ->
    let o = Builder.run ~digest:true b in
    Alcotest.(check bool) "violation reproduced" true (o.Builder.violations <> []);
    (match Builder.recorded_digest content with
     | None -> Alcotest.fail "fixture lost its digest header"
     | Some d -> Alcotest.(check string) "digest reproduced" d o.Builder.digest)

(* The same legacy fixture also replays through [Explore.Repro] — the two
   readers agree on what the file means. *)
let test_legacy_repro_two_readers_agree () =
  match Explore.Repro.read "fixtures/legacy_skip_dep.repro" with
  | Error msg -> Alcotest.failf "repro read: %s" msg
  | Ok r ->
    (match Explore.Repro.replay r with
     | Error msg -> Alcotest.failf "repro replay: %s" msg
     | Ok outcome ->
       let content =
         In_channel.with_open_text "fixtures/legacy_skip_dep.repro"
           In_channel.input_all
       in
       let via_builder =
         match Builder.of_string content with
         | Ok b -> (Builder.run ~digest:true b).Builder.digest
         | Error msg -> Alcotest.failf "builder parse: %s" msg
       in
       Alcotest.(check string) "same digest both ways"
         outcome.Explore.Explorer.digest via_builder)

(* New-format spec files: a handwritten spec parses, runs, serializes
   back to an equal builder (normalization is idempotent). *)
let test_spec_text_idempotent () =
  let text =
    String.concat "\n"
      [ "ecsim-spec v1"; "stack alg5+ae"; "n 4"; "seed 5"; "deadline 200";
        "timer-period 2"; "delay uniform min=1 max=3";
        "workload posts count=8 from=8 every=6"; "check etob tau=auto";
        "check watchdog auto"; "plan 2";
        "lossy left=0,1 from=20 until=80"; "crash p=3 at=30"; "end" ]
  in
  match Builder.of_string text with
  | Error msg -> Alcotest.failf "spec parse: %s" msg
  | Ok b ->
    (* The plan was normalized on parse: the crash sorts before the lossy
       window. *)
    (match b.Builder.plan with
     | [ Adversity.Crash _; Adversity.Lossy_partition _ ] -> ()
     | _ -> Alcotest.fail "plan not normalized on parse");
    (match Builder.of_lines (Builder.to_lines b) with
     | Ok b' -> Alcotest.(check bool) "idempotent" true (b = b')
     | Error msg -> Alcotest.failf "reparse: %s" msg);
    let o = Builder.run ~digest:true b in
    Alcotest.(check bool) "spec runs" true (o.Builder.digest <> "")

(* ------------------------------------------------------------------ *)
(* of_line rejects malformed lines, one case per spec shape            *)
(* ------------------------------------------------------------------ *)

let test_of_line_errors () =
  let cases =
    [ ("crash", "crash p=zzz at=3");            (* non-integer field *)
      ("partition", "partition left=0 from=5"); (* missing until *)
      ("lossy", "lossy left=0 from=a until=9");
      ("oneway", "oneway left=0,1 until=9");    (* missing from *)
      ("flapping", "flapping left=0 from=1 until=9 period=0"); (* period<1 *)
      ("spike", "spike link=1>x from=1 until=9 factor=3"); (* bad link *)
      ("drop", "drop from=1 until=9");          (* missing pct *)
      ("dup", "dup from=1 until=9 copies=two");
      ("flap", "flap until=9");                 (* missing period *)
      ("crashrec", "crashrec p=1 at=50 until=40"); (* inverted window *)
      ("disk", "disk p=1 kind=gremlins");       (* unknown fault kind *)
      ("unknown kind", "meteor p=1 at=3") ]
  in
  List.iter
    (fun (shape, line) ->
       match Adversity.of_line line with
       | Ok _ -> Alcotest.failf "%s: malformed line %S parsed" shape line
       | Error msg ->
         Alcotest.(check bool)
           (shape ^ ": error message is not empty") true (msg <> ""))
    cases

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Whole-spec parse errors name the offending line number. *)
let test_of_lines_names_line () =
  let text =
    String.concat "\n"
      [ "ecsim-spec v1"; "stack alg5"; "n 4"; "seed 5"; "deadline 200";
        "timer-period 2"; "delay constant 1"; "workload none"; "plan 1";
        "drop from=1 until=9"; "end" ]
  in
  match Builder.of_string text with
  | Ok _ -> Alcotest.fail "malformed plan line parsed"
  | Error msg ->
    Alcotest.(check bool) "error names line 10" true
      (contains_substring msg "line 10")

(* ------------------------------------------------------------------ *)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "builder"
    [ ("differential",
       [ Alcotest.test_case "golden stable via builder" `Quick
           test_golden_stable_via_builder;
         Alcotest.test_case "golden crash via builder" `Quick
           test_golden_crash_via_builder;
         Alcotest.test_case "ae stack" `Quick test_ae_differential;
         Alcotest.test_case "recoverable stack" `Quick
           test_recoverable_differential;
         Alcotest.test_case "scenario facade" `Quick
           test_scenario_facade_differential ]);
      ("text form",
       [ Alcotest.test_case "legacy repro via builder" `Quick
           test_legacy_repro_via_builder;
         Alcotest.test_case "legacy repro: two readers agree" `Quick
           test_legacy_repro_two_readers_agree;
         Alcotest.test_case "spec text idempotent" `Quick
           test_spec_text_idempotent ]
       @ qc [ prop_spec_roundtrip ]);
      ("parse errors",
       [ Alcotest.test_case "of_line rejects each shape" `Quick
           test_of_line_errors;
         Alcotest.test_case "of_lines names the line" `Quick
           test_of_lines_names_line ]) ]
