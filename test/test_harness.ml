(* Tests for the scenario harness and its statistics helpers: the shared
   wiring used by every other suite deserves its own checks. *)

open Simulator
open Ec_core

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  match Harness.Stats.of_list [ 5; 1; 9; 3; 7 ] with
  | None -> Alcotest.fail "stats"
  | Some s ->
    Alcotest.(check int) "count" 5 s.Harness.Stats.count;
    Alcotest.(check (float 0.001)) "mean" 5.0 s.Harness.Stats.mean;
    Alcotest.(check int) "min" 1 s.Harness.Stats.min;
    Alcotest.(check int) "max" 9 s.Harness.Stats.max;
    Alcotest.(check int) "p50" 5 s.Harness.Stats.p50

let test_stats_empty () =
  Alcotest.(check bool) "empty" true (Harness.Stats.of_list [] = None)

let test_stats_percentile_edges () =
  let sorted = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  Alcotest.(check int) "p10" 1 (Harness.Stats.percentile sorted 0.1);
  Alcotest.(check int) "p95" 10 (Harness.Stats.percentile sorted 0.95);
  Alcotest.(check int) "p100" 10 (Harness.Stats.percentile sorted 1.0)

let prop_stats_bounds =
  QCheck.Test.make ~name:"stats: mean and percentiles within [min, max]"
    ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_bound 1000))
    (fun samples ->
       match Harness.Stats.of_list samples with
       | None -> samples = []
       | Some s ->
         let open Harness.Stats in
         float_of_int s.min <= s.mean
         && s.mean <= float_of_int s.max
         && s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max)

(* ------------------------------------------------------------------ *)
(* Scenario harness                                                    *)
(* ------------------------------------------------------------------ *)

let test_spread_posts_shape () =
  let posts = Harness.Scenario.spread_posts ~n:3 ~count:7 ~from_time:10 ~every:5 in
  Alcotest.(check int) "count" 7 (List.length posts);
  List.iteri
    (fun i (t, p, input) ->
       Alcotest.(check int) "time" (10 + (i * 5)) t;
       Alcotest.(check int) "round robin" (i mod 3) p;
       match input with
       | Harness.Scenario.Post _ -> ()
       | _ -> Alcotest.fail "not a post")
    posts

let test_engine_config_reflects_setup () =
  let setup = { (Harness.Scenario.default ~n:4 ~deadline:99) with
                seed = 7; timer_period = 5 } in
  let config = Harness.Scenario.engine_config setup in
  Alcotest.(check int) "n" 4 config.Engine.n;
  Alcotest.(check int) "deadline" 99 config.Engine.deadline;
  Alcotest.(check int) "seed" 7 config.Engine.seed;
  Alcotest.(check int) "timer" 5 config.Engine.timer_period

let test_omega_stabilization_reporting () =
  let s_oracle = { (Harness.Scenario.default ~n:3 ~deadline:10) with
                   omega = Harness.Scenario.Oracle
                       { stabilize_at = 17; pre = Detectors.Omega.Self_trust } } in
  let s_elected = { s_oracle with
                    omega = Harness.Scenario.Elected { initial_timeout = 4 } } in
  Alcotest.(check (option int)) "oracle" (Some 17)
    (Harness.Scenario.omega_stabilization s_oracle);
  Alcotest.(check (option int)) "elected" None
    (Harness.Scenario.omega_stabilization s_elected)

(* The three ETOB stacks are interchangeable behind the same service: the
   same workload passes the same base checks on each. *)
let test_all_impls_same_interface () =
  List.iter
    (fun impl ->
       let setup = { (Harness.Scenario.default ~n:3 ~deadline:300) with
                     omega = Harness.Scenario.Oracle
                         { stabilize_at = 0; pre = Detectors.Omega.Self_trust } } in
       let inputs = Harness.Scenario.spread_posts ~n:3 ~count:6 ~from_time:5 ~every:4 in
       let trace = Harness.Scenario.run_etob ~inputs setup impl in
       let report = Harness.Scenario.etob_report setup trace in
       Alcotest.(check bool) "base ok" true (Properties.etob_base_ok report))
    [ Harness.Scenario.Algorithm_5; Harness.Scenario.Paxos_baseline;
      Harness.Scenario.Algorithm_1_over_4 ]

(* Determinism across the whole harness: identical setups, identical
   traces. *)
let test_harness_deterministic () =
  let mk () =
    let setup = { (Harness.Scenario.default ~n:4 ~deadline:200) with
                  seed = 11;
                  delay = Net.uniform ~min:1 ~max:5;
                  omega = Harness.Scenario.Elected { initial_timeout = 5 } } in
    let inputs = Harness.Scenario.spread_posts ~n:4 ~count:8 ~from_time:5 ~every:4 in
    Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5
  in
  let t1 = mk () and t2 = mk () in
  Alcotest.(check int) "same sends" (Trace.sent t1) (Trace.sent t2);
  Alcotest.(check int) "same steps" (Trace.steps t1) (Trace.steps t2);
  let digest t =
    Format.asprintf "%a" App_msg.pp_seq
      (Properties.final_d (Properties.etob_run_of_trace (Failures.none ~n:4) t) 0)
  in
  Alcotest.(check string) "same final sequence" (digest t1) (digest t2)

(* The refactor guarantee: the mutable-heap engine replays the exact
   byte-for-byte trace the persistent-heap engine produced.  The golden
   file was generated with the pre-refactor engine and committed. *)
let test_golden_trace_byte_identical () =
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:120) with
                delay = Net.uniform ~min:1 ~max:4 } in
  let inputs = Harness.Scenario.spread_posts ~n:3 ~count:6 ~from_time:8 ~every:5 in
  let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
  let got = Format.asprintf "%a" Trace.pp trace in
  let golden =
    In_channel.with_open_bin "golden_stable_trace.txt" In_channel.input_all
  in
  (* On mismatch, persist the produced trace next to the golden file and
     point at a ready-to-run diff command: the full strings are too long
     for Alcotest's assertion output to be usable. *)
  if got <> golden then begin
    let got_path = "golden_stable_trace.got.txt" in
    Out_channel.with_open_bin got_path (fun oc ->
        Out_channel.output_string oc got);
    Alcotest.failf
      "golden trace mismatch (%d vs %d bytes); inspect with:\n  diff %s %s"
      (String.length golden) (String.length got)
      (Filename.concat (Sys.getcwd ()) "golden_stable_trace.txt")
      (Filename.concat (Sys.getcwd ()) got_path)
  end

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep_run ~seed =
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:150) with seed } in
  let inputs = Harness.Scenario.spread_posts ~n:3 ~count:4 ~from_time:5 ~every:4 in
  let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
  (Trace.sent trace, Trace.delivered trace, Trace.steps trace)

(* Domain count must not change results: same seeds, same values, same
   order. *)
let test_sweep_parallel_matches_sequential () =
  let seeds = Harness.Sweep.seed_range ~base:100 ~count:12 in
  let seq = Harness.Sweep.map ~domains:1 ~seeds sweep_run in
  let par = Harness.Sweep.map ~domains:4 ~seeds sweep_run in
  Alcotest.(check int) "all runs" 12 (List.length par);
  Alcotest.(check bool) "parallel = sequential" true (seq = par);
  List.iter2
    (fun s r -> Alcotest.(check int) "seed order preserved" s r.Harness.Sweep.seed)
    seeds par

let test_sweep_verdicts () =
  let results =
    List.map (fun seed -> { Harness.Sweep.seed; value = seed mod 3 })
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let v = Harness.Sweep.verdicts results ~ok:(fun x -> x <> 0) in
  Alcotest.(check int) "runs" 6 v.Harness.Sweep.runs;
  Alcotest.(check int) "passed" 4 v.Harness.Sweep.passed;
  Alcotest.(check (list int)) "failed seeds" [ 0; 3 ] v.Harness.Sweep.failed_seeds

let test_sweep_mean_stddev () =
  (match Harness.Sweep.mean_stddev [] with
   | None -> ()
   | Some _ -> Alcotest.fail "empty list should give None");
  match Harness.Sweep.mean_stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] with
  | None -> Alcotest.fail "non-empty"
  | Some (mean, stddev) ->
    Alcotest.(check (float 1e-9)) "mean" 5.0 mean;
    Alcotest.(check (float 1e-9)) "stddev" 2.0 stddev

(* A raising run must surface as a failed verdict for its seed, not abort
   the sweep: the explorer's parallel mode relies on this to keep scanning
   past a crashing plan. *)
let test_sweep_map_safe_captures_exceptions () =
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let results =
    Harness.Sweep.map_safe ~domains:2 ~seeds (fun ~seed ->
        if seed mod 2 = 0 then failwith (Printf.sprintf "boom %d" seed)
        else seed * 10)
  in
  Alcotest.(check int) "all seeds accounted for" 5 (List.length results);
  List.iter2
    (fun seed r ->
       Alcotest.(check int) "seed order preserved" seed r.Harness.Sweep.seed;
       match r.Harness.Sweep.value with
       | Ok v -> Alcotest.(check int) "value" (seed * 10) v
       | Error msg ->
         let contains hay needle =
           let nh = String.length hay and nn = String.length needle in
           let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
           go 0
         in
         Alcotest.(check bool) "raising seed" true (seed mod 2 = 0);
         Alcotest.(check bool) "message kept" true
           (contains msg (Printf.sprintf "boom %d" seed)))
    seeds results;
  let v = Harness.Sweep.verdicts results ~ok:Result.is_ok in
  Alcotest.(check int) "passed" 3 v.Harness.Sweep.passed;
  Alcotest.(check (list int)) "failed seeds" [ 2; 4 ] v.Harness.Sweep.failed_seeds

let test_sweep_merged_latency_stats () =
  match Harness.Sweep.merged_latency_stats [ [| 1; 3 |]; [||]; [| 5 |] ] with
  | None -> Alcotest.fail "non-empty samples"
  | Some s ->
    Alcotest.(check int) "count" 3 s.Harness.Stats.count;
    Alcotest.(check int) "min" 1 s.Harness.Stats.min;
    Alcotest.(check int) "max" 5 s.Harness.Stats.max

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_timeline_renders () =
  (* The crash sits inside the active window (the rendered horizon is the
     last recorded event), so blanked cells follow it. *)
  let pattern = Failures.of_crashes ~n:3 [ (2, 30) ] in
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:200) with
                pattern;
                omega = Harness.Scenario.Oracle
                    { stabilize_at = 0; pre = Detectors.Omega.Self_trust } } in
  let inputs = Harness.Scenario.spread_posts ~n:3 ~count:4 ~from_time:10 ~every:10 in
  let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
  let rendered = Harness.Timeline.render ~width:40 ~pattern trace in
  let lines = String.split_on_char '\n' rendered in
  (* Header + 3 lanes + legend (+ trailing empty). *)
  Alcotest.(check bool) "enough lines" true (List.length lines >= 5);
  Alcotest.(check bool) "has broadcast marks" true (String.contains rendered 'B');
  Alcotest.(check bool) "has delivery marks" true (String.contains rendered 'd');
  Alcotest.(check bool) "has crash mark" true (String.contains rendered 'X');
  (* The crashed lane goes blank after the crash: its line ends in spaces. *)
  let p2_line = List.nth lines 3 in
  Alcotest.(check bool) "blank after crash" true
    (String.length p2_line > 0 && p2_line.[String.length p2_line - 1] = ' ')

(* ------------------------------------------------------------------ *)
(* Crash-recovery stack                                                *)
(* ------------------------------------------------------------------ *)

(* The crash-stop model is untouched by the recovery machinery: a run
   with a permanent crash replays the committed golden trace
   byte-for-byte (captured before the recovery runtime landed). *)
let test_golden_crash_trace_byte_identical () =
  let setup =
    { (Harness.Scenario.default ~n:4 ~deadline:160) with
      seed = 13;
      delay = Net.uniform ~min:1 ~max:4;
      pattern = Failures.of_crashes ~n:4 [ (3, 40) ] }
  in
  let inputs =
    Harness.Scenario.spread_posts ~n:4 ~count:8 ~from_time:6 ~every:6
  in
  let trace =
    Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5
  in
  let got = Format.asprintf "%a" Trace.pp trace in
  let golden =
    In_channel.with_open_bin "golden_crash_trace.txt" In_channel.input_all
  in
  if got <> golden then begin
    let got_path = "golden_crash_trace.got.txt" in
    Out_channel.with_open_bin got_path (fun oc ->
        Out_channel.output_string oc got);
    Alcotest.failf
      "golden crash trace mismatch (%d vs %d bytes); inspect with:\n  diff %s %s"
      (String.length golden) (String.length got)
      (Filename.concat (Sys.getcwd ()) "golden_crash_trace.txt")
      (Filename.concat (Sys.getcwd ()) got_path)
  end

let recovery_setup =
  { (Harness.Scenario.default ~n:4 ~deadline:300) with
    seed = 3;
    delay = Net.uniform ~min:1 ~max:3;
    pattern =
      Failures.crash_recover_at (Failures.none ~n:4) 1 ~at:60 ~recover_at:140 }

let recovery_inputs =
  Harness.Scenario.spread_posts ~n:4 ~count:12 ~from_time:8 ~every:20

let test_recoverable_clean_recovery () =
  let trace, handles, stores =
    Harness.Scenario.run_recoverable ~inputs:recovery_inputs recovery_setup
  in
  let report = Harness.Scenario.etob_report recovery_setup trace in
  Alcotest.(check bool) "base ETOB properties hold" true
    (Properties.etob_base_ok report);
  Alcotest.(check bool) "no sequence number reused" true
    report.Properties.distinct_broadcasts.Properties.ok;
  Alcotest.(check bool) "restarted handle knows it" true
    (Recoverable.was_restarted handles.(1));
  Alcotest.(check bool) "replay recovered pre-crash messages" true
    (Recoverable.replayed_msgs handles.(1) > 0);
  Alcotest.(check bool) "links retransmitted into the window" true
    (Array.exists (fun h -> Recoverable.retransmitted h > 0) handles);
  Alcotest.(check int) "one restart on the victim's store" 1
    (Persist.Store.stats stores.(1)).Persist.Store.restarts

let test_recoverable_deterministic () =
  let show () =
    let trace, _, _ =
      Harness.Scenario.run_recoverable ~inputs:recovery_inputs recovery_setup
    in
    Format.asprintf "%a" Trace.pp trace
  in
  Alcotest.(check string) "same config, same trace" (show ()) (show ())

let test_recoverable_amnesia_caught () =
  let trace, _, _ =
    Harness.Scenario.run_recoverable ~inputs:recovery_inputs
      ~mutation:Recoverable.Skip_log_replay recovery_setup
  in
  let report = Harness.Scenario.etob_report recovery_setup trace in
  Alcotest.(check bool) "skipping the replay reuses sequence numbers" false
    report.Properties.distinct_broadcasts.Properties.ok

(* A run without downtime windows exercises the same wrapped stack and
   must stay clean: the log/retransmission layer is behaviour-preserving
   when nobody crashes. *)
let test_recoverable_no_window_clean () =
  let setup =
    { recovery_setup with pattern = Failures.none ~n:4 }
  in
  let trace, handles, _ =
    Harness.Scenario.run_recoverable ~inputs:recovery_inputs setup
  in
  let report = Harness.Scenario.etob_report setup trace in
  Alcotest.(check bool) "clean" true (Properties.etob_base_ok report);
  Alcotest.(check bool) "nobody restarted" false
    (Array.exists Recoverable.was_restarted handles)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest [ prop_stats_bounds ] in
  Alcotest.run "harness"
    [ ("stats",
       [ Alcotest.test_case "basic" `Quick test_stats_basic;
         Alcotest.test_case "empty" `Quick test_stats_empty;
         Alcotest.test_case "percentile edges" `Quick test_stats_percentile_edges ]
       @ qc);
      ("scenario",
       [ Alcotest.test_case "spread_posts shape" `Quick test_spread_posts_shape;
         Alcotest.test_case "engine config" `Quick test_engine_config_reflects_setup;
         Alcotest.test_case "omega stabilization" `Quick
           test_omega_stabilization_reporting;
         Alcotest.test_case "impls interchangeable" `Quick
           test_all_impls_same_interface;
         Alcotest.test_case "deterministic" `Quick test_harness_deterministic;
         Alcotest.test_case "golden trace byte-identical" `Quick
           test_golden_trace_byte_identical ]);
      ("sweep",
       [ Alcotest.test_case "parallel matches sequential" `Quick
           test_sweep_parallel_matches_sequential;
         Alcotest.test_case "verdicts" `Quick test_sweep_verdicts;
         Alcotest.test_case "map_safe captures exceptions" `Quick
           test_sweep_map_safe_captures_exceptions;
         Alcotest.test_case "mean stddev" `Quick test_sweep_mean_stddev;
         Alcotest.test_case "merged latency stats" `Quick
           test_sweep_merged_latency_stats ]);
      ("timeline",
       [ Alcotest.test_case "renders" `Quick test_timeline_renders ]);
      ("recovery",
       [ Alcotest.test_case "golden crash trace byte-identical" `Quick
           test_golden_crash_trace_byte_identical;
         Alcotest.test_case "clean recovery" `Quick
           test_recoverable_clean_recovery;
         Alcotest.test_case "deterministic" `Quick
           test_recoverable_deterministic;
         Alcotest.test_case "amnesia caught" `Quick
           test_recoverable_amnesia_caught;
         Alcotest.test_case "no window stays clean" `Quick
           test_recoverable_no_window_clean ]);
    ]
