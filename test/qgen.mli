(** Shared QCheck arbitraries and shrinkers over simulator and explorer
    domain values: failure-pattern crash lists, adversity plans and base
    delay-model bounds.

    The adversity generators are re-exports of the {!Harness.Builder}
    ones (their home since the builder refactor); the simulator-level
    generators stay local.

    Plans generated here are deliberately NOT fairness-clamped (unlike
    [Explore.Explorer.random_plan]): safety properties must hold under any
    plan whatsoever, so these generators cover the whole space.  They are
    [Adversity.make]-normalized, so generated plans equal their own
    text-form roundtrip.  Shrinkers are structural — drop whole elements,
    then substitute the strictly weaker variants of
    [Explore.Adversity.weaken]. *)

open Explore

(** {1 Failure patterns, as crash lists} *)

(** Up to [max_faulty] crashes among processes [1..n-1] (process 0 always
    stays correct), at arbitrary times within the horizon.  Duplicate
    processes are fine: {!pattern_of_crashes} keeps the earliest time. *)
val crash_list_gen :
  n:int -> max_faulty:int -> horizon:int -> (int * int) list QCheck.Gen.t

val crash_list_arb :
  n:int -> max_faulty:int -> horizon:int -> (int * int) list QCheck.arbitrary

val pattern_of_crashes : n:int -> (int * int) list -> Simulator.Failures.pattern

(** {1 Adversity plans} *)

(** A nonempty proper subset of [0..n-1]. *)
val subset_gen : int -> int list QCheck.Gen.t

(** A window [(from_time, until_time)] with [from_time < until_time], both
    within the deadline. *)
val window_gen : int -> (int * int) QCheck.Gen.t

(** One unclamped crash-stop-era adversity spec: crashes, buffering
    partitions, delay spikes, drops, duplication, omega flapping. *)
val spec_gen : n:int -> deadline:int -> Adversity.spec QCheck.Gen.t

val plan_gen : n:int -> deadline:int -> Adversity.spec list QCheck.Gen.t

(** Structural shrinker: the strictly weaker variants of
    [Adversity.weaken]. *)
val spec_shrink : Adversity.spec -> Adversity.spec QCheck.Iter.t

val plan_arb : n:int -> deadline:int -> Adversity.spec list QCheck.arbitrary

(** {1 Recovery plans: downtime windows and disk faults} *)

val recovery_spec_gen : n:int -> deadline:int -> Adversity.spec QCheck.Gen.t

(** At least one recovery-flavoured spec, mixed with unclamped crash-stop
    specs of {!spec_gen}. *)
val recovery_plan_gen :
  n:int -> deadline:int -> Adversity.spec list QCheck.Gen.t

val recovery_plan_arb :
  n:int -> deadline:int -> Adversity.spec list QCheck.arbitrary

(** {1 Message-losing partition schedules} *)

val partition_loss_spec_gen :
  n:int -> deadline:int -> Adversity.spec QCheck.Gen.t

(** Loss schedules composed with crash-recovery plans and a sprinkle of
    generic unclamped adversity: the causal-order QCheck property of
    test_partition.ml runs over exactly this space. *)
val partition_recovery_plan_gen :
  n:int -> deadline:int -> Adversity.spec list QCheck.Gen.t

val partition_recovery_plan_arb :
  n:int -> deadline:int -> Adversity.spec list QCheck.arbitrary

(** {1 Base delay-model bounds (Net.uniform parameters)} *)

val delay_bounds_gen : (int * int) QCheck.Gen.t
val delay_bounds_arb : (int * int) QCheck.arbitrary

(** {1 Binary trace records and WAL payloads} *)

(** Strings over the whole byte range (JSON metacharacters, control
    characters, NUL, high bytes), up to 24 bytes. *)
val frame_string_gen : string QCheck.Gen.t

(** One [Persist.Frame] trace event, any constructor, with fields wide
    enough to reach multi-byte varint encodings. *)
val frame_event_gen : Persist.Frame.event QCheck.Gen.t

val frame_events_gen : Persist.Frame.event list QCheck.Gen.t
val frame_events_arb : Persist.Frame.event list QCheck.arbitrary

(** Non-empty WAL payloads over arbitrary bytes, in the size range
    protocols actually log (1-60 bytes; the empty record is excluded —
    see the documented torn-empty corner in [Persist.Store]). *)
val wal_payload_gen : string QCheck.Gen.t

val wal_payloads_gen : string list QCheck.Gen.t
val wal_payloads_arb : string list QCheck.arbitrary

(** {1 Service-layer client populations}

    Re-exports of [Harness.Service_spec]'s generators: always-valid specs
    over the small ranges the smoke gate exercises — the same space
    [ecsim service --smoke] samples. *)

val service_arrival_gen : Harness.Service_spec.arrival QCheck.Gen.t
val service_spec_gen : Harness.Service_spec.t QCheck.Gen.t
val service_spec_arb : Harness.Service_spec.t QCheck.arbitrary
