(* Tests for the simulation substrate: priority queue, RNG, failure
   patterns, network models, trace recording and the engine's execution
   semantics (the paper's Section 2 model). *)

open Simulator
open Simulator.Types

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let of_items items =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.insert q ~prio:p v) items;
  q

let test_pqueue_orders () =
  let q = of_items [ (3, "c"); (1, "a"); (2, "b") ] in
  Alcotest.(check (list (pair int string))) "pop order"
    [ (1, "a"); (2, "b"); (3, "c") ] (Pqueue.to_sorted_list q)

let test_pqueue_fifo_among_ties () =
  let q = of_items [ (7, "first"); (7, "second"); (7, "third") ] in
  Alcotest.(check (list (pair int string))) "stable"
    [ (7, "first"); (7, "second"); (7, "third") ] (Pqueue.to_sorted_list q)

let test_pqueue_size_and_peek () =
  let q = of_items [ (5, "x"); (2, "y") ] in
  Alcotest.(check int) "size" 2 (Pqueue.size q);
  Alcotest.(check (option int)) "peek" (Some 2) (Pqueue.peek_prio q);
  Alcotest.(check bool) "not empty" false (Pqueue.is_empty q);
  Alcotest.(check (list (pair int string))) "to_sorted_list is non-destructive"
    (Pqueue.to_sorted_list q) (Pqueue.to_sorted_list q);
  Alcotest.(check int) "size preserved" 2 (Pqueue.size q)

(* A random interleaving of inserts and pops, described by a list of
   (prio, pop_now) commands: insert prio, then pop whenever pop_now. *)
let interleave_gen = QCheck.(list (pair (int_bound 50) bool))

(* Drive the mutable heap through an interleaving; values carry the
   insertion sequence number so stability is observable. *)
let run_mutable cmds =
  let q = Pqueue.create () in
  let pops = ref [] in
  List.iteri
    (fun seq (prio, pop_now) ->
       Pqueue.insert q ~prio seq;
       if pop_now then
         match Pqueue.pop q with
         | Some (p, s) -> pops := (p, s) :: !pops
         | None -> ())
    cmds;
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some pv -> drain (pv :: acc)
  in
  List.rev !pops @ drain []

let run_persistent cmds =
  let q = ref Pqueue_persistent.empty in
  let pops = ref [] in
  List.iteri
    (fun seq (prio, pop_now) ->
       q := Pqueue_persistent.insert !q ~prio seq;
       if pop_now then
         match Pqueue_persistent.pop !q with
         | Some ((p, s), q') -> q := q'; pops := (p, s) :: !pops
         | None -> ())
    cmds;
  List.rev !pops @ Pqueue_persistent.to_sorted_list !q

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue: pop order is a stable sort" ~count:300
    QCheck.(list (pair (int_bound 50) small_int))
    (fun items ->
       let popped = Pqueue.to_sorted_list (of_items items) in
       let expected = List.stable_sort (fun (a, _) (b, _) -> compare a b) items in
       popped = expected)

(* Differential test: on random insert/pop interleavings, the mutable
   binary heap and the retained persistent leftist heap pop exactly the
   same (prio, seq) sequence — the heap swap is order-preserving. *)
let prop_pqueue_differential =
  QCheck.Test.make ~name:"pqueue: binary heap = persistent heap" ~count:500
    interleave_gen
    (fun cmds -> run_mutable cmds = run_persistent cmds)

(* Model test exercised against BOTH implementations: each matches a
   stable sorted-list model of the same interleaving. *)
let sorted_model cmds =
  let pops = ref [] in
  let xs = ref [] in
  List.iteri
    (fun seq (prio, pop_now) ->
       xs := List.stable_sort compare ((prio, seq) :: !xs);
       if pop_now then
         match !xs with
         | [] -> ()
         | hd :: rest -> pops := hd :: !pops; xs := rest)
    cmds;
  List.rev !pops @ !xs

let prop_pqueue_vs_model =
  QCheck.Test.make ~name:"pqueue: both heaps match the sorted-list model"
    ~count:500 interleave_gen
    (fun cmds ->
       let model = sorted_model cmds in
       run_mutable cmds = model && run_persistent cmds = model)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 99 and b = Rng.create 99 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let test_rng_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 500 do
    let x = Rng.in_range rng ~min:3 ~max:9 in
    Alcotest.(check bool) "in range" true (3 <= x && x <= 9)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 11 in
  let xs = List.init 30 (fun i -> i) in
  let ys = Rng.shuffle rng xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_rng_rejects_bad_bound () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

(* ------------------------------------------------------------------ *)
(* Failures                                                            *)
(* ------------------------------------------------------------------ *)

let test_failures_basics () =
  let f = Failures.of_crashes ~n:5 [ (1, 10); (3, 20) ] in
  Alcotest.(check (list int)) "correct" [ 0; 2; 4 ] (Failures.correct f);
  Alcotest.(check (list int)) "faulty" [ 1; 3 ] (Failures.faulty f);
  Alcotest.(check bool) "alive before crash" true (Failures.is_alive f 1 9);
  Alcotest.(check bool) "dead at crash" false (Failures.is_alive f 1 10);
  Alcotest.(check bool) "majority" true (Failures.has_correct_majority f);
  Alcotest.(check (option int)) "min correct" (Some 0) (Failures.min_correct f)

let test_failures_crashed_by_monotone () =
  let f = Failures.of_crashes ~n:4 [ (0, 5); (2, 15) ] in
  Alcotest.(check (list int)) "F(4)" [] (Failures.crashed_by f 4);
  Alcotest.(check (list int)) "F(10)" [ 0 ] (Failures.crashed_by f 10);
  Alcotest.(check (list int)) "F(20)" [ 0; 2 ] (Failures.crashed_by f 20)

let test_failures_double_crash_keeps_earliest () =
  let f = Failures.crash_at (Failures.of_crashes ~n:3 [ (1, 5) ]) 1 30 in
  Alcotest.(check (option int)) "earliest kept" (Some 5) (Failures.crash_time f 1)

let test_environments () =
  let minority = Failures.of_crashes ~n:5 [ (0, 1); (1, 1); (2, 1) ] in
  Alcotest.(check bool) "any admits" true
    (Failures.admits Failures.any_environment minority);
  Alcotest.(check bool) "majority rejects" false
    (Failures.admits Failures.majority_environment minority);
  Alcotest.(check bool) "3-resilient admits" true
    (Failures.admits (Failures.t_resilient 3) minority);
  Alcotest.(check bool) "2-resilient rejects" false
    (Failures.admits (Failures.t_resilient 2) minority)

let test_failures_recovery_windows () =
  let f =
    Failures.crash_recover_at (Failures.none ~n:3) 1 ~at:10 ~recover_at:20
  in
  Alcotest.(check (list (pair int int))) "window" [ (10, 20) ]
    (Failures.downtimes f 1);
  Alcotest.(check bool) "has recovery" true (Failures.has_recovery f);
  Alcotest.(check bool) "windows do not make a process faulty" false
    (Failures.is_faulty f 1);
  Alcotest.(check bool) "still correct" true (Failures.is_correct f 1);
  Alcotest.(check bool) "up before" true (Failures.is_alive f 1 9);
  Alcotest.(check bool) "down at crash" false (Failures.is_alive f 1 10);
  Alcotest.(check bool) "down until recovery" false (Failures.is_alive f 1 19);
  Alcotest.(check bool) "up at recovery" true (Failures.is_alive f 1 20);
  Alcotest.(check bool) "status Down mid-window" true
    (Failures.status f 1 15 = Failures.Down);
  Alcotest.(check bool) "status Up after" true
    (Failures.status f 1 20 = Failures.Up);
  Alcotest.(check (list int)) "F(15) counts the down process" [ 1 ]
    (Failures.crashed_by f 15)

let test_failures_windows_merge () =
  let f = Failures.none ~n:2 in
  let f = Failures.crash_recover_at f 0 ~at:10 ~recover_at:20 in
  let f = Failures.crash_recover_at f 0 ~at:15 ~recover_at:25 in
  let f = Failures.crash_recover_at f 0 ~at:25 ~recover_at:30 in
  Alcotest.(check (list (pair int int))) "overlap and touch fuse"
    [ (10, 30) ] (Failures.downtimes f 0);
  let f = Failures.crash_recover_at f 0 ~at:40 ~recover_at:45 in
  Alcotest.(check (list (pair int int))) "disjoint windows kept ascending"
    [ (10, 30); (40, 45) ] (Failures.downtimes f 0);
  Alcotest.check_raises "empty window rejected"
    (Invalid_argument "Failures.crash_recover_at: recovery must follow the crash")
    (fun () -> ignore (Failures.crash_recover_at f 0 ~at:5 ~recover_at:5))

let test_failures_recovery_events_sorted () =
  let f = Failures.none ~n:3 in
  let f = Failures.crash_recover_at f 2 ~at:5 ~recover_at:9 in
  let f = Failures.crash_recover_at f 0 ~at:12 ~recover_at:30 in
  let f = Failures.crash_recover_at f 2 ~at:14 ~recover_at:18 in
  Alcotest.(check (list (triple int int int))) "schedule by crash time"
    [ (2, 5, 9); (0, 12, 30); (2, 14, 18) ]
    (Failures.recovery_events f)

(* A permanent crash inside a downtime window wins: the process never
   restarts (and is faulty). *)
let test_failures_permanent_crash_wins () =
  let f =
    Failures.crash_recover_at (Failures.none ~n:2) 1 ~at:10 ~recover_at:20
  in
  let f = Failures.crash_at f 1 15 in
  Alcotest.(check bool) "faulty" true (Failures.is_faulty f 1);
  Alcotest.(check bool) "Down before the permanent crash" true
    (Failures.status f 1 12 = Failures.Down);
  Alcotest.(check bool) "Crashed from then on" true
    (Failures.status f 1 25 = Failures.Crashed);
  Alcotest.(check bool) "never back up" false (Failures.is_alive f 1 50)

let prop_random_pattern_has_correct =
  QCheck.Test.make ~name:"failures: random pattern keeps a correct process"
    ~count:200 QCheck.(pair small_int small_int)
    (fun (seed, extra) ->
       let n = 2 + (extra mod 6) in
       let rng = Rng.create seed in
       let f = Failures.random ~rng ~n ~max_faulty:(n - 1) ~horizon:50 in
       Failures.correct_count f >= 1)

(* Regression for the documented contract: [random ~max_faulty] is always
   admitted by [t_resilient max_faulty] (not merely by any_environment),
   and every crash time stays within the horizon. *)
let prop_random_pattern_t_resilient =
  QCheck.Test.make ~name:"failures: random pattern admitted by t_resilient"
    ~count:300 QCheck.(triple small_int (int_bound 5) (int_bound 80))
    (fun (seed, extra, horizon) ->
       let n = 2 + extra in
       let rng = Rng.create seed in
       let max_faulty = Rng.int rng n in
       let f = Failures.random ~rng ~n ~max_faulty ~horizon in
       Failures.admits (Failures.t_resilient max_faulty) f
       && List.for_all
            (fun p ->
               match Failures.crash_time f p with
               | None -> true
               | Some t -> 0 <= t && t <= horizon)
            (List.init n Fun.id))

(* [random_admitted] respects a stricter environment than the t-resilience
   its max_faulty would allow. *)
let prop_random_admitted_env =
  QCheck.Test.make ~name:"failures: random_admitted respects the environment"
    ~count:200 QCheck.small_int
    (fun seed ->
       let rng = Rng.create seed in
       let f =
         Failures.random_admitted ~rng ~env:Failures.majority_environment
           ~n:5 ~max_faulty:4 ~horizon:60 ()
       in
       Failures.admits Failures.majority_environment f)

(* ------------------------------------------------------------------ *)
(* Net                                                                 *)
(* ------------------------------------------------------------------ *)

let rng = Rng.create 3

let test_net_constant () =
  Alcotest.(check int) "constant" 4
    (Net.delay_of (Net.instantiate (Net.constant 4)) ~src:0 ~dst:1 ~now:10 ~rng)

let test_net_uniform_bounds () =
  let d = Net.instantiate (Net.uniform ~min:2 ~max:6) in
  for now = 0 to 200 do
    let x = Net.delay_of d ~src:0 ~dst:1 ~now ~rng in
    Alcotest.(check bool) "bounds" true (2 <= x && x <= 6)
  done

let test_net_partition_delays_cross_block () =
  let spec = { Net.blocks = [ [ 0; 1 ]; [ 2 ] ]; from_time = 10; until_time = 30 } in
  let d = Net.instantiate (Net.partitioned spec ~base:(Net.constant 1)) in
  Alcotest.(check int) "same block" 1 (Net.delay_of d ~src:0 ~dst:1 ~now:15 ~rng);
  let cross = Net.delay_of d ~src:0 ~dst:2 ~now:15 ~rng in
  Alcotest.(check bool) "cross delayed past heal" true (15 + cross >= 30);
  Alcotest.(check int) "before" 1 (Net.delay_of d ~src:0 ~dst:2 ~now:5 ~rng);
  Alcotest.(check int) "after" 1 (Net.delay_of d ~src:0 ~dst:2 ~now:30 ~rng)

let test_net_slow_period () =
  let d =
    Net.instantiate
      (Net.slow_period ~from_time:10 ~until_time:20 ~factor:5 ~base:(Net.constant 2))
  in
  Alcotest.(check int) "inside" 10 (Net.delay_of d ~src:0 ~dst:1 ~now:12 ~rng);
  Alcotest.(check int) "outside" 2 (Net.delay_of d ~src:0 ~dst:1 ~now:25 ~rng)

let test_net_fifo_no_overtaking () =
  let d = Net.instantiate (Net.fifo ~base:(Net.uniform ~min:1 ~max:9)) in
  let rng = Rng.create 4 in
  let rec go now last_arrival remaining =
    if remaining > 0 then begin
      let delay = Net.delay_of d ~src:0 ~dst:1 ~now ~rng in
      let arrival = now + delay in
      Alcotest.(check bool) "no overtaking" true (arrival > last_arrival);
      go (now + 1) arrival (remaining - 1)
    end
  in
  go 0 (-1) 200

let test_net_fifo_per_link () =
  (* Ordering is per ordered pair: the reverse direction is independent. *)
  let d = Net.instantiate (Net.fifo ~base:(Net.constant 5)) in
  let rng = Rng.create 4 in
  ignore (Net.delay_of d ~src:0 ~dst:1 ~now:0 ~rng);
  (* A later message on the same link gets pushed after the first... *)
  let fwd = Net.delay_of d ~src:0 ~dst:1 ~now:4 ~rng in
  Alcotest.(check bool) "same link clamped" true (4 + fwd > 5);
  (* ...but the reverse link is unaffected. *)
  Alcotest.(check int) "reverse link free" 5 (Net.delay_of d ~src:1 ~dst:0 ~now:4 ~rng)

let test_net_fifo_instances_independent () =
  (* Each instantiation gets its own clamp table. *)
  let model = Net.fifo ~base:(Net.constant 5) in
  let rng = Rng.create 4 in
  let d1 = Net.instantiate model in
  ignore (Net.delay_of d1 ~src:0 ~dst:1 ~now:0 ~rng);
  let d2 = Net.instantiate model in
  Alcotest.(check int) "fresh instance unclamped" 5
    (Net.delay_of d2 ~src:0 ~dst:1 ~now:4 ~rng)

let test_net_local_fast () =
  let d = Net.instantiate (Net.local_fast ~remote:(Net.constant 7)) in
  Alcotest.(check int) "self" 1 (Net.delay_of d ~src:2 ~dst:2 ~now:0 ~rng);
  Alcotest.(check int) "remote" 7 (Net.delay_of d ~src:2 ~dst:0 ~now:0 ~rng)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

type Msg.payload += Ping of int
type Io.output += Got of int * proc_id

(* Every process pings everyone once; receivers record what they got. *)
let ping_node (ctx : Engine.ctx) =
  let fired = ref false in
  { Engine.on_message =
      (fun ~src payload ->
         match payload with
         | Ping k -> ctx.Engine.output (Got (k, src))
         | _ -> ());
    on_timer =
      (fun () ->
         if not !fired then begin
           fired := true;
           ctx.Engine.broadcast (Ping ctx.Engine.self)
         end);
    on_input = (fun _ -> ()) }

let got_events trace =
  List.filter_map
    (fun (t, p, o) -> match o with Got (k, src) -> Some (t, p, k, src) | _ -> None)
    (Trace.outputs trace)

let test_engine_delivers_everything () =
  let config = Engine.default_config ~n:3 ~deadline:30 in
  let trace = Engine.run config ~make_node:ping_node ~inputs:[] in
  (* 3 broadcasts x 3 receivers. *)
  Alcotest.(check int) "9 deliveries" 9 (List.length (got_events trace))

let test_engine_deterministic () =
  let config = { (Engine.default_config ~n:4 ~deadline:50) with
                 delay = Net.uniform ~min:1 ~max:5; seed = 123 } in
  let t1 = Engine.run config ~make_node:ping_node ~inputs:[] in
  let t2 = Engine.run config ~make_node:ping_node ~inputs:[] in
  Alcotest.(check int) "same events" (List.length (got_events t1))
    (List.length (got_events t2));
  Alcotest.(check bool) "identical" true (got_events t1 = got_events t2)

let test_engine_seed_changes_run () =
  let mk seed = { (Engine.default_config ~n:4 ~deadline:50) with
                  delay = Net.uniform ~min:1 ~max:9; seed } in
  let t1 = Engine.run (mk 1) ~make_node:ping_node ~inputs:[] in
  let t2 = Engine.run (mk 2) ~make_node:ping_node ~inputs:[] in
  Alcotest.(check bool) "timings differ" true (got_events t1 <> got_events t2)

let test_engine_crashed_take_no_steps () =
  let pattern = Failures.of_crashes ~n:3 [ (2, 1) ] in
  let config = { (Engine.default_config ~n:3 ~deadline:30) with pattern } in
  let trace = Engine.run config ~make_node:ping_node ~inputs:[] in
  (* p2 crashes at t=1, before its first timer: it never pings, and pings
     addressed to it are dropped: 2 broadcasts x 2 alive receivers. *)
  let events = got_events trace in
  Alcotest.(check int) "4 deliveries" 4 (List.length events);
  List.iter
    (fun (_, p, k, _) ->
       Alcotest.(check bool) "no step by crashed" true (p <> 2 && k <> 2))
    events;
  Alcotest.(check bool) "drops counted" true (Trace.dropped trace > 0)

let test_engine_message_to_crashed_dropped_at_delivery () =
  (* p1 crashes at t=3; a ping sent at t=1 with delay 5 must be dropped. *)
  let pattern = Failures.of_crashes ~n:2 [ (1, 3) ] in
  let config = { (Engine.default_config ~n:2 ~deadline:30) with
                 pattern; delay = Net.constant 5 } in
  let trace = Engine.run config ~make_node:ping_node ~inputs:[] in
  List.iter
    (fun (_, p, _, _) -> Alcotest.(check int) "only p0 delivers" 0 p)
    (got_events trace)

let test_engine_recovery_restarts_node () =
  let pattern =
    Failures.crash_recover_at (Failures.none ~n:3) 2 ~at:1 ~recover_at:10
  in
  let config = { (Engine.default_config ~n:3 ~deadline:30) with pattern } in
  let trace = Engine.run config ~make_node:ping_node ~inputs:[] in
  let events = got_events trace in
  (* p0/p1 ping while p2 is down (deliveries to p2 are dropped: 2 x 2);
     the restarted p2 gets fresh volatile state — [fired] is false again —
     so it pings after recovery, reaching all three.  2x2 + 3 = 7. *)
  Alcotest.(check int) "7 deliveries" 7 (List.length events);
  List.iter
    (fun (t, p, k, _) ->
       if p = 2 || k = 2 then
         Alcotest.(check bool) "p2 activity only after recovery" true (t >= 10))
    events;
  Alcotest.(check bool) "restarted p2 pinged" true
    (List.exists (fun (_, _, k, _) -> k = 2) events);
  Alcotest.(check bool) "deliveries to the down p2 dropped" true
    (Trace.dropped trace >= 2)

(* run_with hands back the latest incarnation's handle. *)
let test_engine_run_with_latest_incarnation () =
  let pattern =
    Failures.crash_recover_at (Failures.none ~n:3) 1 ~at:5 ~recover_at:12
  in
  let config = { (Engine.default_config ~n:3 ~deadline:30) with pattern } in
  let incarnations = Array.make 3 0 in
  let make_node (ctx : Engine.ctx) =
    incarnations.(ctx.Engine.self) <- incarnations.(ctx.Engine.self) + 1;
    (Engine.idle_node, incarnations.(ctx.Engine.self))
  in
  let _, handles = Engine.run_with config ~make_node ~inputs:[] in
  Alcotest.(check (array int)) "restarted slot holds the second incarnation"
    [| 1; 2; 1 |] handles

let test_engine_crash_recover_marks () =
  let marks = ref [] in
  let sink =
    { Sink.null with
      Sink.on_crash = (fun ~at ~proc -> marks := ("crash", at, proc) :: !marks);
      on_recover = (fun ~at ~proc -> marks := ("recover", at, proc) :: !marks)
    }
  in
  let pattern =
    Failures.crash_recover_at (Failures.none ~n:2) 1 ~at:5 ~recover_at:12
  in
  let config =
    { (Engine.default_config ~n:2 ~deadline:30) with pattern; sink = Some sink }
  in
  ignore (Engine.run config ~make_node:ping_node ~inputs:[]);
  Alcotest.(check (list (triple string int int))) "both transitions reported"
    [ ("crash", 5, 1); ("recover", 12, 1) ]
    (List.rev !marks)

let test_engine_timer_cadence () =
  let ticks = ref [] in
  let make_node (ctx : Engine.ctx) =
    { Engine.on_message = (fun ~src:_ _ -> ());
      on_timer =
        (fun () -> if ctx.Engine.self = 0 then ticks := ctx.Engine.now () :: !ticks);
      on_input = (fun _ -> ()) }
  in
  let config = { (Engine.default_config ~n:2 ~deadline:20) with timer_period = 5 } in
  ignore (Engine.run config ~make_node ~inputs:[]);
  Alcotest.(check (list int)) "period 5 from stagger 1" [ 1; 6; 11; 16 ]
    (List.rev !ticks)

let test_engine_inputs_delivered_in_time () =
  let seen = ref [] in
  let make_node (ctx : Engine.ctx) =
    { Engine.on_message = (fun ~src:_ _ -> ());
      on_timer = (fun () -> ());
      on_input = (fun i ->
          match i with
          | Io.String_input s -> seen := (ctx.Engine.now (), ctx.Engine.self, s) :: !seen
          | _ -> ()) }
  in
  let inputs = [ (4, 1, Io.String_input "a"); (9, 0, Io.String_input "b") ] in
  let config = Engine.default_config ~n:2 ~deadline:20 in
  let trace = Engine.run config ~make_node ~inputs in
  Alcotest.(check (list (triple int int string))) "inputs seen"
    [ (4, 1, "a"); (9, 0, "b") ] (List.rev !seen);
  Alcotest.(check int) "inputs recorded in trace" 2 (List.length (Trace.inputs trace))

let test_engine_inputs_to_crashed_are_dropped () =
  let seen = ref 0 in
  let pattern = Failures.of_crashes ~n:2 [ (1, 5) ] in
  let make_node (_ : Engine.ctx) =
    { Engine.idle_node with on_input = (fun _ -> incr seen) }
  in
  let config = { (Engine.default_config ~n:2 ~deadline:30) with pattern } in
  let inputs =
    [ (3, 1, Io.String_input "before-crash"); (10, 1, Io.String_input "after-crash");
      (10, 0, Io.String_input "alive") ]
  in
  let trace = Engine.run config ~make_node ~inputs in
  Alcotest.(check int) "two inputs processed" 2 !seen;
  (* Only processed inputs enter the input history. *)
  Alcotest.(check int) "two inputs recorded" 2 (List.length (Trace.inputs trace))

let test_engine_combine_both_components_see_events () =
  let a_count = ref 0 and b_count = ref 0 in
  let make_node (ctx : Engine.ctx) =
    let base = ping_node ctx in
    let counter_a =
      { Engine.idle_node with on_message = (fun ~src:_ _ -> incr a_count) }
    in
    let counter_b =
      { Engine.idle_node with on_message = (fun ~src:_ _ -> incr b_count) }
    in
    Engine.stack [ base; counter_a; counter_b ]
  in
  let config = Engine.default_config ~n:2 ~deadline:20 in
  ignore (Engine.run config ~make_node ~inputs:[]);
  Alcotest.(check bool) "a saw messages" true (!a_count > 0);
  Alcotest.(check int) "same view" !a_count !b_count

let test_engine_deadline_truncates () =
  let config = { (Engine.default_config ~n:2 ~deadline:10) with timer_period = 3 } in
  let trace = Engine.run config ~make_node:ping_node ~inputs:[] in
  Alcotest.(check bool) "no event after deadline" true (Trace.last_time trace <= 10)

let test_engine_rejects_bad_config () =
  (* n = 1 is rejected at pattern construction already. *)
  Alcotest.check_raises "n too small" (Invalid_argument "Failures.none: need n >= 2")
    (fun () -> ignore (Engine.default_config ~n:1 ~deadline:10));
  let config = { (Engine.default_config ~n:2 ~deadline:10) with timer_period = 0 } in
  Alcotest.check_raises "bad period"
    (Invalid_argument "Engine.run: timer_period must be >= 1")
    (fun () -> ignore (Engine.run config ~make_node:ping_node ~inputs:[]))

(* Regression: a stateful delay model (fifo) reused across consecutive
   runs must behave as if freshly created each time — the per-link clamp
   table used to leak from one run into the next. *)
let test_engine_fifo_model_fresh_per_run () =
  let config = { (Engine.default_config ~n:3 ~deadline:60) with
                 delay = Net.fifo ~base:(Net.uniform ~min:1 ~max:6); seed = 7 } in
  let show t = Format.asprintf "%a" Trace.pp t in
  let t1 = Engine.run config ~make_node:ping_node ~inputs:[] in
  let t2 = Engine.run config ~make_node:ping_node ~inputs:[] in
  Alcotest.(check string) "identical traces from one fifo value" (show t1) (show t2)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

(* A chatty workload for sink tests: every timer broadcasts, every
   delivery produces an output entry. *)
let chatty_node (ctx : Engine.ctx) =
  { Engine.on_message =
      (fun ~src payload ->
         match payload with Ping k -> ctx.Engine.output (Got (k, src)) | _ -> ());
    on_timer = (fun () -> ctx.Engine.broadcast (Ping ctx.Engine.self));
    on_input = (fun _ -> ()) }

let test_sink_counters_matches_recorder () =
  let config = { (Engine.default_config ~n:3 ~deadline:50) with
                 pattern = Failures.of_crashes ~n:3 [ (2, 25) ] } in
  let trace = Engine.run config ~make_node:chatty_node ~inputs:[] in
  let c = Sink.counters ~n:3 in
  let config_c = { config with Engine.sink = Some (Sink.counters_sink c) } in
  let empty_trace = Engine.run config_c ~make_node:chatty_node ~inputs:[] in
  Alcotest.(check int) "sent" (Trace.sent trace) (Sink.sent c);
  Alcotest.(check int) "delivered" (Trace.delivered trace) (Sink.delivered c);
  Alcotest.(check int) "dropped" (Trace.dropped trace) (Sink.dropped c);
  Alcotest.(check int) "steps" (Trace.steps trace) (Sink.steps c);
  Alcotest.(check int) "outputs" (List.length (Trace.outputs trace)) (Sink.outputs c);
  Alcotest.(check int) "custom sink leaves the returned trace empty" 0
    (List.length (Trace.entries empty_trace));
  (* Unit delays: every recorded latency is exactly 1 tick. *)
  let lats = Sink.all_latencies c in
  Alcotest.(check int) "one latency per delivery" (Sink.delivered c)
    (Array.length lats);
  Array.iter (fun l -> Alcotest.(check int) "unit latency" 1 l) lats;
  match Sink.latency_summary c 0 with
  | None -> Alcotest.fail "p0 delivered nothing"
  | Some s ->
    Alcotest.(check int) "p50" 1 s.Sink.p50;
    Alcotest.(check int) "p95" 1 s.Sink.p95;
    Alcotest.(check int) "p99" 1 s.Sink.p99;
    Alcotest.(check int) "p999" 1 s.Sink.p999;
    Alcotest.(check int) "max" 1 s.Sink.max

(* Nearest-rank quantiles are pinned exactly: for a sample of size [len]
   the q-permille quantile is the value at 1-based rank
   ceil(q*len/1000), so every quantile is a member of the sample and no
   float rounding can move the p999 tail. *)
let test_sink_nearest_rank_exact () =
  let sorted = Array.init 100 (fun i -> (i + 1) * 10) in  (* 10,20,...,1000 *)
  let q permille = Sink.nearest_rank sorted ~permille in
  Alcotest.(check int) "p50 of 1..100*10" 500 (q 500);
  Alcotest.(check int) "p95" 950 (q 950);
  Alcotest.(check int) "p99" 990 (q 990);
  Alcotest.(check int) "p999 rounds up to max" 1000 (q 999);
  Alcotest.(check int) "p1000 is max" 1000 (q 1000);
  Alcotest.(check int) "p0 clamps to min" 10 (q 0);
  (* len = 3: ranks are ceil(1.5)=2, ceil(2.85)=3, ceil(2.97)=3, ceil(2.997)=3 *)
  let three = [| 7; 11; 42 |] in
  Alcotest.(check int) "p50 of 3" 11 (Sink.nearest_rank three ~permille:500);
  Alcotest.(check int) "p95 of 3" 42 (Sink.nearest_rank three ~permille:950);
  Alcotest.(check int) "p999 of 3" 42 (Sink.nearest_rank three ~permille:999);
  (* len = 1: everything is the single sample. *)
  Alcotest.(check int) "singleton p999" 5 (Sink.nearest_rank [| 5 |] ~permille:999);
  (* summarize sorts internally and agrees with nearest_rank on the
     sorted sample, whatever the input order. *)
  let shuffled = [| 42; 7; 11 |] in
  (match Sink.summarize shuffled with
   | None -> Alcotest.fail "non-empty sample"
   | Some s ->
     Alcotest.(check int) "summarize count" 3 s.Sink.count;
     Alcotest.(check int) "summarize p50" 11 s.Sink.p50;
     Alcotest.(check int) "summarize p99" 42 s.Sink.p99;
     Alcotest.(check int) "summarize p999" 42 s.Sink.p999;
     Alcotest.(check int) "summarize max" 42 s.Sink.max);
  Alcotest.(check (option reject)) "empty sample summarizes to None" None
    (Sink.summarize [||]);
  (* A long-tailed sample where p99 and p999 genuinely differ: 999 unit
     latencies and one straggler; rank ceil(0.99*1000)=990 -> 1,
     ceil(0.999*1000)=999 -> 1, ceil(1.0*1000)=1000 -> straggler. *)
  let tail = Array.make 1000 1 in
  tail.(999) <- 500;
  (match Sink.summarize tail with
   | None -> Alcotest.fail "non-empty sample"
   | Some s ->
     Alcotest.(check int) "tail p99" 1 s.Sink.p99;
     Alcotest.(check int) "tail p999" 1 s.Sink.p999;
     Alcotest.(check int) "tail max" 500 s.Sink.max);
  let tail2 = Array.make 1000 1 in
  tail2.(999) <- 500; tail2.(998) <- 400;
  (match Sink.summarize tail2 with
   | None -> Alcotest.fail "non-empty sample"
   | Some s ->
     Alcotest.(check int) "two-straggler p999 hits the tail" 400 s.Sink.p999;
     Alcotest.(check int) "two-straggler p99 stays in the body" 1 s.Sink.p99)

(* [tee a b] must forward each event to [a] then [b], event by event —
   interleaved, never batched — so the second sink can rely on the first
   one's state being current for the same event. *)
let test_sink_tee_ordering () =
  let log = ref [] in
  let mk tag =
    { Sink.on_input = (fun ~at:_ ~proc:_ _ -> log := (tag, "input") :: !log);
      on_output = (fun ~at:_ ~proc:_ _ -> log := (tag, "output") :: !log);
      on_send = (fun _ -> log := (tag, "send") :: !log);
      on_deliver = (fun ~at:_ _ -> log := (tag, "deliver") :: !log);
      on_drop = (fun ~at:_ _ -> log := (tag, "drop") :: !log);
      on_step = (fun ~at:_ ~proc:_ -> log := (tag, "step") :: !log);
      on_crash = (fun ~at:_ ~proc:_ -> log := (tag, "crash") :: !log);
      on_recover = (fun ~at:_ ~proc:_ -> log := (tag, "recover") :: !log) }
  in
  let sink = Sink.tee (mk "a") (mk "b") in
  let env = { Msg.src = 0; dst = 1; payload = Ping 0; sent_at = 3; uid = 7 } in
  sink.Sink.on_step ~at:1 ~proc:0;
  sink.Sink.on_send env;
  sink.Sink.on_deliver ~at:5 env;
  sink.Sink.on_drop ~at:6 env;
  Alcotest.(check (list (pair string string))) "a before b, per event"
    [ ("a", "step"); ("b", "step");
      ("a", "send"); ("b", "send");
      ("a", "deliver"); ("b", "deliver");
      ("a", "drop"); ("b", "drop") ]
    (List.rev !log)

let test_sink_tee_and_jsonl () =
  let buf = Buffer.create 256 in
  let target = Trace.create ~n:3 in
  let sink =
    Sink.tee (Sink.recorder target)
      (Sink.jsonl ~emit:(fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n'))
  in
  let config = { (Engine.default_config ~n:3 ~deadline:30) with
                 Engine.sink = Some sink } in
  ignore (Engine.run config ~make_node:ping_node ~inputs:[]);
  Alcotest.(check int) "tee: recorder saw all deliveries" 9
    (List.length (Trace.outputs target));
  let lines =
    List.filter (fun s -> s <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check bool) "jsonl emitted lines" true (List.length lines > 0);
  List.iter
    (fun l ->
       Alcotest.(check bool) "line is a json object" true
         (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  let count ev =
    List.length
      (List.filter
         (fun l ->
            String.length l > 7 + String.length ev
            && String.sub l 0 (8 + String.length ev) = {|{"ev":"|} ^ ev ^ {|"|})
         lines)
  in
  Alcotest.(check int) "one deliver line per delivery" 9 (count "deliver");
  Alcotest.(check int) "sends match recorder" (Trace.sent target) (count "send")

(* Bracket semantics: the channel is flushed and closed even when the
   observed run raises, and the result passes through when it returns. *)
let test_sink_with_jsonl_closes_on_raise () =
  let path = Filename.temp_file "ecsim_jsonl" ".jsonl" in
  (try
     Sink.with_jsonl path (fun sink ->
         sink.Sink.on_crash ~at:3 ~proc:1;
         raise Exit)
   with Exit -> ());
  let content = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check string) "event flushed before the exception escaped"
    "{\"ev\":\"crash\",\"t\":3,\"proc\":1}\n" content;
  Alcotest.(check int) "result passes through" 7
    (Sink.with_jsonl path (fun _ -> 7));
  Sys.remove path

let test_sink_json_escape () =
  Alcotest.(check string) "quotes and backslashes" {|a\"b\\c\nd|}
    (Sink.json_escape "a\"b\\c\nd")

(* The acceptance bar for the counters sink: on a long chatty run it must
   allocate well under the full recorder (which conses an entry per
   input/output).  Measured with Gc.allocated_bytes on the same workload. *)
let test_sink_counters_allocates_less () =
  let deadline = 100_000 in
  let config = { (Engine.default_config ~n:3 ~deadline) with timer_period = 50 } in
  (* Gc.allocated_bytes only advances at GC points, so flush the minor
     heap around each measurement. *)
  let allocated f =
    Gc.minor ();
    let before = Gc.allocated_bytes () in
    f ();
    Gc.minor ();
    Gc.allocated_bytes () -. before
  in
  let recorder_bytes =
    allocated (fun () ->
        ignore (Engine.run config ~make_node:chatty_node ~inputs:[]))
  in
  let c = Sink.counters ~n:3 in
  let counters_bytes =
    allocated (fun () ->
        ignore
          (Engine.run { config with Engine.sink = Some (Sink.counters_sink c) }
             ~make_node:chatty_node ~inputs:[]))
  in
  Alcotest.(check bool) "counters sink did observe the run" true
    (Sink.delivered c > 10_000);
  Alcotest.(check bool)
    (Printf.sprintf "counters (%.0f bytes) measurably below recorder (%.0f bytes)"
       counters_bytes recorder_bytes)
    true
    (counters_bytes +. 200_000.0 < recorder_bytes)

(* ------------------------------------------------------------------ *)
(* Trace utilities and listeners                                       *)
(* ------------------------------------------------------------------ *)

let test_trace_accessors () =
  let trace = Trace.create ~n:2 in
  Trace.record_input trace ~time:3 ~proc:0 (Io.String_input "in");
  Trace.record_output trace ~time:5 ~proc:1 (Io.String_output "out");
  Trace.record_output trace ~time:7 ~proc:0 (Io.String_output "out2");
  Alcotest.(check int) "entries" 3 (List.length (Trace.entries trace));
  Alcotest.(check int) "outputs" 2 (List.length (Trace.outputs trace));
  Alcotest.(check int) "inputs" 1 (List.length (Trace.inputs trace));
  Alcotest.(check int) "outputs_of p0" 1 (List.length (Trace.outputs_of trace 0));
  Alcotest.(check int) "inputs_of p0" 1 (List.length (Trace.inputs_of trace 0));
  Alcotest.(check int) "inputs_of p1" 0 (List.length (Trace.inputs_of trace 1));
  Alcotest.(check int) "last_time" 7 (Trace.last_time trace);
  (* Entries come back chronologically. *)
  match Trace.entries trace with
  | [ Trace.In { t = 3; _ }; Trace.Out { t = 5; _ }; Trace.Out { t = 7; _ } ] -> ()
  | _ -> Alcotest.fail "entry order"

let test_trace_counters () =
  let trace = Trace.create ~n:2 in
  Trace.count_sent trace;
  Trace.count_sent trace;
  Trace.count_delivered trace;
  Trace.count_dropped trace;
  Trace.count_step trace;
  Alcotest.(check int) "sent" 2 (Trace.sent trace);
  Alcotest.(check int) "delivered" 1 (Trace.delivered trace);
  Alcotest.(check int) "dropped" 1 (Trace.dropped trace);
  Alcotest.(check int) "steps" 1 (Trace.steps trace)

let test_listeners_fire_in_order () =
  let log = ref [] in
  let l = Listeners.create () in
  Listeners.register l (fun x -> log := ("a", x) :: !log);
  Listeners.register l (fun x -> log := ("b", x) :: !log);
  Listeners.fire l 1;
  Listeners.fire l 2;
  Alcotest.(check int) "count" 2 (Listeners.count l);
  Alcotest.(check (list (pair string int))) "order"
    [ ("a", 1); ("b", 1); ("a", 2); ("b", 2) ] (List.rev !log)

(* The register-heavy case that used to be O(n^2): many listeners must
   still fire in registration order. *)
let test_listeners_many_in_order () =
  let count = 1000 in
  let log = ref [] in
  let l = Listeners.create () in
  for i = 0 to count - 1 do
    Listeners.register l (fun x -> log := (i, x) :: !log)
  done;
  Listeners.fire l 42;
  Alcotest.(check int) "count" count (Listeners.count l);
  Alcotest.(check (list int)) "registration order"
    (List.init count (fun i -> i))
    (List.rev_map fst !log)

let test_io_printers_roundtrip () =
  let show_in i = Format.asprintf "%a" Io.pp_input i in
  let show_out o = Format.asprintf "%a" Io.pp_output o in
  Alcotest.(check string) "tick" "tick" (show_in Io.Tick_input);
  Alcotest.(check string) "string in" "in:x" (show_in (Io.String_input "x"));
  Alcotest.(check string) "string out" "out:y" (show_out (Io.String_output "y"))

let test_run_with_returns_handles () =
  let config = Engine.default_config ~n:3 ~deadline:20 in
  let _, handles =
    Engine.run_with config
      ~make_node:(fun ctx -> (Engine.idle_node, ctx.Engine.self * 10))
      ~inputs:[]
  in
  Alcotest.(check (array int)) "one handle per process" [| 0; 10; 20 |] handles

(* Reliable links: every message sent to a process that stays alive is
   delivered by some time, for any delay model. *)
let prop_engine_reliable_links =
  QCheck.Test.make ~name:"engine: eventual delivery to alive processes" ~count:50
    QCheck.(pair small_int (int_bound 3))
    (fun (seed, dmax) ->
       let config = { (Engine.default_config ~n:3 ~deadline:200) with
                      seed; delay = Net.uniform ~min:1 ~max:(2 + dmax) } in
       let trace = Engine.run config ~make_node:ping_node ~inputs:[] in
       List.length (got_events trace) = 9)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest
      [ prop_pqueue_sorts; prop_pqueue_differential; prop_pqueue_vs_model;
        prop_random_pattern_has_correct; prop_random_pattern_t_resilient;
        prop_random_admitted_env; prop_engine_reliable_links ]
  in
  Alcotest.run "simulator"
    [ ("pqueue",
       [ Alcotest.test_case "orders by priority" `Quick test_pqueue_orders;
         Alcotest.test_case "fifo among ties" `Quick test_pqueue_fifo_among_ties;
         Alcotest.test_case "size and peek" `Quick test_pqueue_size_and_peek ]);
      ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "bounds" `Quick test_rng_bounds;
         Alcotest.test_case "split independent" `Quick test_rng_split_independent;
         Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
         Alcotest.test_case "rejects bad bound" `Quick test_rng_rejects_bad_bound ]);
      ("failures",
       [ Alcotest.test_case "basics" `Quick test_failures_basics;
         Alcotest.test_case "crashed_by monotone" `Quick test_failures_crashed_by_monotone;
         Alcotest.test_case "double crash" `Quick test_failures_double_crash_keeps_earliest;
         Alcotest.test_case "environments" `Quick test_environments;
         Alcotest.test_case "recovery windows" `Quick
           test_failures_recovery_windows;
         Alcotest.test_case "windows merge" `Quick test_failures_windows_merge;
         Alcotest.test_case "recovery events sorted" `Quick
           test_failures_recovery_events_sorted;
         Alcotest.test_case "permanent crash wins" `Quick
           test_failures_permanent_crash_wins ]);
      ("net",
       [ Alcotest.test_case "constant" `Quick test_net_constant;
         Alcotest.test_case "uniform bounds" `Quick test_net_uniform_bounds;
         Alcotest.test_case "partition" `Quick test_net_partition_delays_cross_block;
         Alcotest.test_case "slow period" `Quick test_net_slow_period;
         Alcotest.test_case "fifo no overtaking" `Quick test_net_fifo_no_overtaking;
         Alcotest.test_case "fifo per link" `Quick test_net_fifo_per_link;
         Alcotest.test_case "fifo instances independent" `Quick
           test_net_fifo_instances_independent;
         Alcotest.test_case "local fast" `Quick test_net_local_fast ]);
      ("engine",
       [ Alcotest.test_case "delivers everything" `Quick test_engine_delivers_everything;
         Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
         Alcotest.test_case "seed changes run" `Quick test_engine_seed_changes_run;
         Alcotest.test_case "crashed take no steps" `Quick test_engine_crashed_take_no_steps;
         Alcotest.test_case "drop at delivery" `Quick
           test_engine_message_to_crashed_dropped_at_delivery;
         Alcotest.test_case "recovery restarts node" `Quick
           test_engine_recovery_restarts_node;
         Alcotest.test_case "run_with latest incarnation" `Quick
           test_engine_run_with_latest_incarnation;
         Alcotest.test_case "crash/recover marks" `Quick
           test_engine_crash_recover_marks;
         Alcotest.test_case "timer cadence" `Quick test_engine_timer_cadence;
         Alcotest.test_case "inputs" `Quick test_engine_inputs_delivered_in_time;
         Alcotest.test_case "inputs to crashed dropped" `Quick
           test_engine_inputs_to_crashed_are_dropped;
         Alcotest.test_case "combine" `Quick test_engine_combine_both_components_see_events;
         Alcotest.test_case "deadline" `Quick test_engine_deadline_truncates;
         Alcotest.test_case "rejects bad config" `Quick test_engine_rejects_bad_config;
         Alcotest.test_case "run_with handles" `Quick test_run_with_returns_handles;
         Alcotest.test_case "fifo model fresh per run" `Quick
           test_engine_fifo_model_fresh_per_run ]);
      ("sink",
       [ Alcotest.test_case "counters matches recorder" `Quick
           test_sink_counters_matches_recorder;
         Alcotest.test_case "nearest-rank quantiles exact" `Quick
           test_sink_nearest_rank_exact;
         Alcotest.test_case "tee ordering" `Quick test_sink_tee_ordering;
         Alcotest.test_case "tee and jsonl" `Quick test_sink_tee_and_jsonl;
         Alcotest.test_case "with_jsonl closes on raise" `Quick
           test_sink_with_jsonl_closes_on_raise;
         Alcotest.test_case "json escape" `Quick test_sink_json_escape;
         Alcotest.test_case "counters allocates less" `Slow
           test_sink_counters_allocates_less ]);
      ("trace",
       [ Alcotest.test_case "accessors" `Quick test_trace_accessors;
         Alcotest.test_case "counters" `Quick test_trace_counters ]);
      ("listeners",
       [ Alcotest.test_case "fire in order" `Quick test_listeners_fire_in_order;
         Alcotest.test_case "many in order" `Quick test_listeners_many_in_order ]);
      ("io",
       [ Alcotest.test_case "printers" `Quick test_io_printers_roundtrip ]);
      ("properties", qc);
    ]
