(* Tests for the replication layer: commands, deterministic machines, and
   replicas over both ETOB (eventually consistent service) and the Paxos
   baseline (strongly consistent service). *)

open Simulator
open Replication

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let all_commands =
  [ Command.incr 5; Command.incr (-2); Command.put "k" "v"; Command.del "k";
    Command.enqueue "x"; Command.dequeue; Command.set_reg "r";
    Command.wput ~client:4 ~rid:17 "k" "v" ]

let test_command_roundtrip () =
  List.iter
    (fun c ->
       match Command.of_tag (Command.to_tag c) with
       | Some c' -> Alcotest.(check bool) "roundtrip" true (Command.equal c c')
       | None -> Alcotest.failf "roundtrip failed for %s" (Command.to_tag c))
    all_commands

let test_command_rejects_colon () =
  Alcotest.check_raises "colon key"
    (Invalid_argument "Command: key must not contain ':' (\"a:b\")")
    (fun () -> ignore (Command.put "a:b" "v"))

let test_command_of_tag_garbage () =
  Alcotest.(check (option (Alcotest.testable Command.pp Command.equal)))
    "garbage" None (Command.of_tag "nonsense");
  Alcotest.(check (option (Alcotest.testable Command.pp Command.equal)))
    "bad int" None (Command.of_tag "incr:zzz")

(* ------------------------------------------------------------------ *)
(* Machines                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  let s = Machines.replay (module Machines.Counter)
      [ Command.incr 3; Command.incr (-1); Command.put "a" "b" ] in
  Alcotest.(check int) "counter" 2 s

let test_kv () =
  let s = Machines.replay (module Machines.Kv)
      [ Command.put "a" "1"; Command.put "b" "2"; Command.del "a";
        Command.put "b" "3" ] in
  Alcotest.(check string) "kv digest" "b=3" (Machines.Kv.digest s)

let test_register () =
  let s = Machines.replay (module Machines.Register)
      [ Command.set_reg "x"; Command.set_reg "y" ] in
  Alcotest.(check string) "register" "y" (Machines.Register.digest s)

let test_fifo () =
  let s = Machines.replay (module Machines.Fifo)
      [ Command.enqueue "a"; Command.enqueue "b"; Command.dequeue;
        Command.enqueue "c" ] in
  Alcotest.(check string) "fifo" "b|c" (Machines.Fifo.digest s);
  let empty_deq = Machines.replay (module Machines.Fifo) [ Command.dequeue ] in
  Alcotest.(check string) "dequeue on empty is a no-op" ""
    (Machines.Fifo.digest empty_deq)

let command_gen =
  QCheck.Gen.(
    oneof
      [ map (fun n -> Command.Incr n) (int_range (-5) 5);
        map2 (fun k v -> Command.Put (string_of_int k, string_of_int v))
          (int_range 0 4) (int_range 0 9);
        map (fun k -> Command.Del (string_of_int k)) (int_range 0 4);
        map (fun x -> Command.Enqueue (string_of_int x)) (int_range 0 9);
        return Command.Dequeue;
        map (fun v -> Command.Set_reg (string_of_int v)) (int_range 0 9) ])

let commands_arb =
  QCheck.make
    ~print:(fun cs -> String.concat ";" (List.map Command.to_tag cs))
    QCheck.Gen.(list_size (int_range 0 30) command_gen)

(* Determinism: same command sequence, same digest — the property state
   machine replication rests on. *)
let prop_machines_deterministic =
  QCheck.Test.make ~name:"machines: replay is deterministic" ~count:200
    commands_arb
    (fun cs ->
       Machines.Kv.digest (Machines.replay (module Machines.Kv) cs)
       = Machines.Kv.digest (Machines.replay (module Machines.Kv) cs)
       && Machines.Fifo.digest (Machines.replay (module Machines.Fifo) cs)
          = Machines.Fifo.digest (Machines.replay (module Machines.Fifo) cs))

let prop_command_roundtrip =
  QCheck.Test.make ~name:"commands: tag roundtrip" ~count:200 commands_arb
    (fun cs ->
       List.for_all
         (fun c ->
            match Command.of_tag (Command.to_tag c) with
            | Some c' -> Command.equal c c'
            | None -> false)
         cs)

(* ------------------------------------------------------------------ *)
(* Replicated services                                                 *)
(* ------------------------------------------------------------------ *)

module Counter_replica = Replica.Make (Machines.Counter)
module Kv_replica = Replica.Make (Machines.Kv)

let oracle ?(pre = Detectors.Omega.Self_trust) stabilize_at =
  Harness.Scenario.Oracle { stabilize_at; pre }

(* Build replica nodes over the chosen broadcast implementation. *)
let run_replicas (type s) (module M : Machines.MACHINE with type state = s)
    ?(inputs = []) setup impl =
  let module R = Replica.Make (M) in
  let make_node ctx =
    let proto_node, service = Harness.Scenario.etob_node setup impl ctx in
    let replica, replica_node = R.create ctx ~etob:service in
    (Engine.stack [ proto_node; replica_node ], replica)
  in
  let trace, replicas =
    Engine.run_with (Harness.Scenario.engine_config setup) ~make_node ~inputs
  in
  (trace, Array.map R.digest replicas)

let submit t p c = (t, p, Replica.Submit c)

let test_counter_replicas_converge () =
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:120) with omega = oracle 0 } in
  let inputs =
    [ submit 5 0 (Command.incr 3); submit 8 1 (Command.incr 4);
      submit 12 2 (Command.incr (-1)) ]
  in
  let trace, digests = run_replicas (module Machines.Counter) ~inputs setup
      Harness.Scenario.Algorithm_5 in
  Array.iter (fun d -> Alcotest.(check string) "sum is 6" "6" d) digests;
  let run = Convergence.run_of_trace setup.Harness.Scenario.pattern trace in
  Alcotest.(check bool) "converged" true (Convergence.converged run)

let partition_setup ~n ~heal =
  let blocks = [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  let spec = { Net.blocks; from_time = 5; until_time = heal } in
  { (Harness.Scenario.default ~n ~deadline:(heal * 3)) with
    delay = Net.partitioned spec ~base:(Net.constant 1);
    omega = oracle ~pre:(Detectors.Omega.Blockwise blocks) heal }

let test_kv_replicas_eventually_consistent_across_partition () =
  (* Writes land on both sides of a partition; replicas diverge during the
     partition and converge after healing.  This is the title's eventually
     consistent replicated service, end to end. *)
  let heal = 50 in
  let setup = partition_setup ~n:5 ~heal in
  let inputs =
    [ submit 10 0 (Command.put "x" "left");
      submit 12 3 (Command.put "y" "right");
      submit 20 1 (Command.put "z" "1");
      submit 22 4 (Command.put "w" "2") ]
  in
  let trace, digests = run_replicas (module Machines.Kv) ~inputs setup
      Harness.Scenario.Algorithm_5 in
  let expected = "w=2,x=left,y=right,z=1" in
  Array.iter (fun d -> Alcotest.(check string) "final state" expected d) digests;
  let run = Convergence.run_of_trace setup.Harness.Scenario.pattern trace in
  Alcotest.(check bool) "diverged during partition" true
    (Convergence.divergence_ticks ~from_time:10 run > 0);
  Alcotest.(check bool) "converged after heal" true
    (Convergence.convergence_time run <= heal + 10)

let test_replica_over_paxos_never_rolls_back () =
  (* The same replica code over the strong baseline: zero rollbacks. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:200) with omega = oracle 0 } in
  let inputs =
    [ submit 10 0 (Command.put "a" "1"); submit 20 1 (Command.put "b" "2");
      submit 30 2 (Command.del "a") ]
  in
  let trace, digests = run_replicas (module Machines.Kv) ~inputs setup
      Harness.Scenario.Paxos_baseline in
  Array.iter (fun d -> Alcotest.(check string) "final" "b=2" d) digests;
  let run = Convergence.run_of_trace setup.Harness.Scenario.pattern trace in
  Alcotest.(check int) "no rollbacks" 0 (Convergence.total_rollbacks run)

let test_replica_over_etob_rolls_back_during_disagreement () =
  (* Divergent leaders make the applied log revisable before stabilization:
     the rollbacks the replica checker counts are the visible price of
     eventual consistency. *)
  let heal = 50 in
  let setup = partition_setup ~n:5 ~heal in
  let inputs =
    [ submit 10 0 (Command.put "x" "left");
      submit 12 3 (Command.put "x" "right") ]
  in
  let trace, _ = run_replicas (module Machines.Kv) ~inputs setup
      Harness.Scenario.Algorithm_5 in
  let run = Convergence.run_of_trace setup.Harness.Scenario.pattern trace in
  Alcotest.(check bool) "converged" true (Convergence.converged run);
  (* Both writes hit the same key from the two sides: once sides merge, the
     side whose order loses must revise. *)
  Alcotest.(check bool) "some replica revised its log" true
    (Convergence.total_rollbacks run > 0)

let test_replicas_survive_minority () =
  (* 3 of 5 crash; the ETOB-backed service keeps accepting and applying
     writes on the surviving minority. *)
  let pattern = Failures.of_crashes ~n:5 [ (2, 25); (3, 25); (4, 25) ] in
  let setup = { (Harness.Scenario.default ~n:5 ~deadline:200) with
                pattern; omega = oracle 0 } in
  let inputs =
    [ submit 10 0 (Command.incr 1); submit 40 1 (Command.incr 10);
      submit 60 0 (Command.incr 100) ]
  in
  let trace, digests = run_replicas (module Machines.Counter) ~inputs setup
      Harness.Scenario.Algorithm_5 in
  List.iter
    (fun p -> Alcotest.(check string) "survivor state" "111" digests.(p))
    (Failures.correct pattern);
  let run = Convergence.run_of_trace pattern trace in
  Alcotest.(check bool) "converged" true (Convergence.converged run)

(* ------------------------------------------------------------------ *)
(* Committed vs speculative views                                      *)
(* ------------------------------------------------------------------ *)

module Dual_kv = Committed_replica.Make (Machines.Kv)

let run_dual_kv ?(inputs = []) setup =
  let make_node ctx =
    let omega, omega_node = Harness.Scenario.omega_module setup ctx in
    let etob, etob_node = Ec_core.Etob_omega.create ctx ~omega in
    let service = Ec_core.Etob_omega.service etob in
    let replica, replica_node =
      Dual_kv.create ctx ~etob:service ~omega
        ~promotion:(fun () -> Ec_core.Etob_omega.promotion etob)
    in
    (Engine.stack [ omega_node; etob_node; replica_node ], replica)
  in
  Engine.run_with (Harness.Scenario.engine_config setup) ~make_node ~inputs

let test_dual_views_agree_in_stable_period () =
  let setup = { (Harness.Scenario.default ~n:5 ~deadline:200) with omega = oracle 0 } in
  let inputs =
    [ submit 10 0 (Command.put "a" "1"); submit 20 1 (Command.put "b" "2") ]
  in
  let trace, replicas = run_dual_kv ~inputs setup in
  Array.iter
    (fun r ->
       Alcotest.(check string) "speculative" "a=1,b=2" (Dual_kv.speculative_digest r);
       Alcotest.(check string) "committed catches up" "a=1,b=2"
         (Dual_kv.committed_digest r))
    replicas;
  Alcotest.(check bool) "committed monotone" true
    (Committed_replica.committed_monotone setup.Harness.Scenario.pattern trace)

let test_dual_views_split_during_partition () =
  (* During the partition the minority side speculates on its own writes
     while committing nothing new; committed reads never roll back even
     though speculative ones do. *)
  let heal = 60 in
  let setup = partition_setup ~n:5 ~heal in
  let inputs =
    [ submit 10 0 (Command.put "x" "left"); submit 12 3 (Command.put "x" "right") ]
  in
  let trace, replicas = run_dual_kv ~inputs setup in
  Array.iter
    (fun r ->
       Alcotest.(check string) "all converge speculatively" "x=right"
         (Dual_kv.speculative_digest r))
    replicas;
  Alcotest.(check bool) "committed never rolled back" true
    (Committed_replica.committed_monotone setup.Harness.Scenario.pattern trace);
  (* Speculative rollbacks did happen (the losing side revised). *)
  let conv = Convergence.run_of_trace setup.Harness.Scenario.pattern trace in
  Alcotest.(check bool) "speculative rollbacks occurred" true
    (Convergence.total_rollbacks conv > 0)

let test_dual_views_committed_stalls_without_majority () =
  let pattern = Failures.of_crashes ~n:5 [ (2, 30); (3, 30); (4, 30) ] in
  let setup = { (Harness.Scenario.default ~n:5 ~deadline:300) with
                pattern; omega = oracle 0 } in
  let inputs =
    [ submit 10 0 (Command.put "a" "1"); submit 80 1 (Command.put "b" "2") ]
  in
  let _, replicas = run_dual_kv ~inputs setup in
  List.iter
    (fun p ->
       let r = replicas.(p) in
       Alcotest.(check string) "speculative view has both" "a=1,b=2"
         (Dual_kv.speculative_digest r);
       Alcotest.(check bool) "committed view misses the post-crash write" true
         (not (String.length (Dual_kv.committed_digest r) >= 7
               && String.sub (Dual_kv.committed_digest r) 4 3 = "b=2")))
    (Failures.correct pattern)

let test_replica_ignores_foreign_traffic () =
  (* Non-command messages share the broadcast layer (e.g. Algorithm 2's
     consensus tags); replicas must skip them without desynchronizing. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:120) with omega = oracle 0 } in
  let inputs =
    [ submit 5 0 (Command.incr 2);
      (8, 1, Harness.Scenario.Post "not-a-command");
      submit 12 2 (Command.incr 5) ]
  in
  let _, digests = run_replicas (module Machines.Counter) ~inputs setup
      Harness.Scenario.Algorithm_5 in
  Array.iter (fun d -> Alcotest.(check string) "foreign tags skipped" "7" d) digests

(* ------------------------------------------------------------------ *)
(* Session guarantees                                                  *)
(* ------------------------------------------------------------------ *)

let run_sessions ?(inputs = []) setup =
  let make_node ctx =
    let omega, omega_node = Harness.Scenario.omega_module setup ctx in
    let etob, etob_node = Ec_core.Etob_omega.create ctx ~omega in
    let service = Ec_core.Etob_omega.service etob in
    let replica, replica_node =
      Dual_kv.create ctx ~etob:service ~omega
        ~promotion:(fun () -> Ec_core.Etob_omega.promotion etob)
    in
    let key = Session.key_of ctx.Engine.self in
    let lookup state () = Machines.String_map.find_opt key state in
    let views =
      [ { Session.v_name = "speculative";
          v_lookup = (fun () -> lookup (Dual_kv.speculative_state replica) ()) };
        { Session.v_name = "committed";
          v_lookup = (fun () -> lookup (Dual_kv.committed_state replica) ()) } ]
    in
    let _, session_node =
      Session.create ctx ~session:ctx.Engine.self ~views
        ~submit:(Dual_kv.submit replica)
    in
    (Engine.stack [ omega_node; etob_node; replica_node; session_node ], ())
  in
  let trace, _ =
    Engine.run_with (Harness.Scenario.engine_config setup) ~make_node ~inputs
  in
  trace

let session_steps ~procs ~from_time ~until ~every =
  List.concat_map
    (fun p ->
       List.init ((until - from_time) / every) (fun i ->
           (from_time + (i * every), p, Session.Session_step)))
    procs

let test_sessions_clean_in_stable_period () =
  (* Reads spaced beyond the write round trip: both views give full session
     guarantees under a stable leader. *)
  let setup = { (Harness.Scenario.default ~n:3 ~deadline:200) with omega = oracle 0 } in
  let inputs = session_steps ~procs:[ 0; 1; 2 ] ~from_time:20 ~until:180 ~every:12 in
  let trace = run_sessions ~inputs setup in
  List.iter
    (fun session ->
       List.iter
         (fun view ->
            let tally = Session.tally_of_trace trace ~session ~view in
            Alcotest.(check bool) "read something" true (tally.Session.reads > 5);
            Alcotest.(check int)
              (Printf.sprintf "s%d %s ryw" session view) 0
              tally.Session.ryw_violations;
            Alcotest.(check int)
              (Printf.sprintf "s%d %s mr" session view) 0
              tally.Session.mr_violations)
         [ "speculative"; "committed" ])
    [ 0; 1; 2 ]

let test_sessions_split_across_partition () =
  let heal = 120 in
  let setup = partition_setup ~n:5 ~heal in
  let setup = { setup with deadline = 320 } in
  let inputs = session_steps ~procs:[ 0; 3 ] ~from_time:20 ~until:300 ~every:12 in
  let trace = run_sessions ~inputs setup in
  (* The majority-side session is clean on the speculative view. *)
  let p0_spec = Session.tally_of_trace trace ~session:0 ~view:"speculative" in
  Alcotest.(check int) "p0 speculative ryw" 0 p0_spec.Session.ryw_violations;
  (* The minority-side committed view cannot serve the session's own writes
     during the partition. *)
  let p3_comm = Session.tally_of_trace trace ~session:3 ~view:"committed" in
  Alcotest.(check bool) "p3 committed ryw violations during partition" true
    (p3_comm.Session.ryw_violations >= 3);
  (* Every stream is clean from shortly after the heal on. *)
  List.iter
    (fun (session, view) ->
       let tally = Session.tally_of_trace trace ~session ~view in
       Alcotest.(check bool)
         (Printf.sprintf "s%d %s clean after heal (last@%d)" session view
            tally.Session.last_violation)
         true
         (tally.Session.last_violation <= heal + 40))
    [ (0, "speculative"); (0, "committed"); (3, "speculative"); (3, "committed") ]

(* --- crash-triggered session migration ------------------------------ *)

(* One session (id 7) lives on replica 0 until it crashes at t=80, then
   resumes on replica 1.  Both incarnations exist from the start; the
   [Session_step_for] inputs route the steps — to proc 0 before the crash,
   to proc 1 after — and [resume_at] decides whether the handoff carries
   the write counter over.  The guarantee checkers must stay clean for a
   correct handoff and flag a naive restart, not silently pass. *)
let run_migrated_session ~resume_at =
  let setup =
    { (Harness.Scenario.default ~n:3 ~deadline:220) with
      omega = oracle 0;
      pattern = Failures.crash_at (Failures.none ~n:3) 0 80 }
  in
  let make_node ctx =
    let omega, omega_node = Harness.Scenario.omega_module setup ctx in
    let etob, etob_node = Ec_core.Etob_omega.create ctx ~omega in
    let service = Ec_core.Etob_omega.service etob in
    let replica, replica_node =
      Dual_kv.create ctx ~etob:service ~omega
        ~promotion:(fun () -> Ec_core.Etob_omega.promotion etob)
    in
    let views =
      [ { Session.v_name = "speculative";
          v_lookup =
            (fun () ->
              Machines.String_map.find_opt (Session.key_of 7)
                (Dual_kv.speculative_state replica)) } ]
    in
    let session_nodes =
      match ctx.Engine.self with
      | 0 ->
        [ snd
            (Session.create ctx ~session:7 ~views
               ~submit:(Dual_kv.submit replica)) ]
      | 1 ->
        [ snd
            (Session.create ~resume_at ctx ~session:7 ~views
               ~submit:(Dual_kv.submit replica)) ]
      | _ -> []
    in
    ( Engine.stack
        ([ omega_node; etob_node; replica_node ] @ session_nodes),
      () )
  in
  let steps proc ~from_time ~until =
    List.init ((until - from_time) / 12) (fun i ->
        (from_time + (i * 12), proc, Session.Session_step_for 7))
  in
  let inputs = steps 0 ~from_time:20 ~until:80 @ steps 1 ~from_time:100 ~until:200 in
  let trace, _ =
    Engine.run_with (Harness.Scenario.engine_config setup) ~make_node ~inputs
  in
  Session.tally_of_trace trace ~session:7 ~view:"speculative"

let test_session_migration_correct_handoff () =
  (* Proc 0 takes 5 steps before crashing, so the migrated incarnation
     must resume its value stream at 5. *)
  let tally = run_migrated_session ~resume_at:5 in
  Alcotest.(check bool) "reads on both replicas" true (tally.Session.reads >= 10);
  Alcotest.(check int) "ryw clean" 0 tally.Session.ryw_violations;
  Alcotest.(check int) "mr clean" 0 tally.Session.mr_violations

let test_session_migration_naive_restart_flagged () =
  (* A naive migration restarts the value stream at 1: its re-written
     values regress the session's reads and the monotonic-reads checker
     must flag it. *)
  let tally = run_migrated_session ~resume_at:0 in
  Alcotest.(check bool) "reads on both replicas" true (tally.Session.reads >= 10);
  Alcotest.(check bool)
    (Format.asprintf "naive restart flagged (%a)" Session.pp_tally tally)
    true
    (tally.Session.mr_violations > 0)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest
      [ prop_machines_deterministic; prop_command_roundtrip ]
  in
  Alcotest.run "replication"
    [ ("command",
       [ Alcotest.test_case "roundtrip" `Quick test_command_roundtrip;
         Alcotest.test_case "rejects colon" `Quick test_command_rejects_colon;
         Alcotest.test_case "garbage tags" `Quick test_command_of_tag_garbage ]);
      ("machines",
       [ Alcotest.test_case "counter" `Quick test_counter;
         Alcotest.test_case "kv" `Quick test_kv;
         Alcotest.test_case "register" `Quick test_register;
         Alcotest.test_case "fifo" `Quick test_fifo ]
       @ qc);
      ("replica",
       [ Alcotest.test_case "counters converge" `Quick test_counter_replicas_converge;
         Alcotest.test_case "kv across partition" `Quick
           test_kv_replicas_eventually_consistent_across_partition;
         Alcotest.test_case "paxos never rolls back" `Quick
           test_replica_over_paxos_never_rolls_back;
         Alcotest.test_case "etob rolls back during disagreement" `Quick
           test_replica_over_etob_rolls_back_during_disagreement;
         Alcotest.test_case "survives minority" `Quick test_replicas_survive_minority;
         Alcotest.test_case "ignores foreign traffic" `Quick
           test_replica_ignores_foreign_traffic ]);
      ("committed_replica",
       [ Alcotest.test_case "views agree in stable period" `Quick
           test_dual_views_agree_in_stable_period;
         Alcotest.test_case "views split during partition" `Quick
           test_dual_views_split_during_partition;
         Alcotest.test_case "committed stalls without majority" `Quick
           test_dual_views_committed_stalls_without_majority ]);
      ("sessions",
       [ Alcotest.test_case "clean in stable period" `Quick
           test_sessions_clean_in_stable_period;
         Alcotest.test_case "split across partition" `Quick
           test_sessions_split_across_partition;
         Alcotest.test_case "migration: correct handoff clean" `Quick
           test_session_migration_correct_handoff;
         Alcotest.test_case "migration: naive restart flagged" `Quick
           test_session_migration_naive_restart_flagged ]);
    ]
