(* Self-test for detlint (DESIGN.md §12): the fixture corpus under
   lint_fixtures/ triggers exactly one rule per file and matches a golden
   JSON report byte-for-byte; the real tree scans clean; malformed
   allowlist directives are hard errors.

   Note on self-reference: this file is itself scanned by the real-tree
   test (and by CI), so directive-like strings below are assembled at
   runtime — the literal comment opener never appears in the source. *)

open Lint

let scan ?strict roots =
  match Driver.scan ?strict roots with
  | Ok r -> r
  | Error e -> Alcotest.failf "detlint scan error: %s" e

let rules r = List.map (fun (f : Finding.t) -> Finding.rule_id f.rule) r.Driver.findings

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let fixture_expectations =
  [ ("lint_fixtures/d1_random.ml", "D1");
    ("lint_fixtures/d2_wallclock.ml", "D2");
    ("lint_fixtures/d3_hashtbl.ml", "D3");
    ("lint_fixtures/d4_poly_compare.ml", "D4");
    ("lint_fixtures/d5_marshal.ml", "D5");
    ("lint_fixtures/d6_unsealed.ml", "D6") ]

(* Each fixture, scanned alone in strict mode, yields exactly its one
   intended finding — so a fixture can never accidentally regress into
   triggering a second rule without this failing. *)
let test_one_finding_per_fixture () =
  List.iter
    (fun (file, rule) ->
       let r = scan ~strict:true [ file ] in
       Alcotest.(check (list string)) (file ^ " rules") [ rule ] (rules r);
       let f = List.hd r.Driver.findings in
       Alcotest.(check string) (file ^ " file") file f.Finding.file)
    fixture_expectations

(* The whole corpus vs the golden machine-readable report: rule, file,
   line, col and message of every finding, byte-for-byte. *)
let test_fixtures_match_golden () =
  let r = scan ~strict:true [ "lint_fixtures" ] in
  let golden =
    In_channel.with_open_bin "lint_fixtures/golden_report.json"
      In_channel.input_all
  in
  Alcotest.(check string) "golden JSON report" golden (Report.to_json r)

(* The justified fixture: gate passes, suppression is still reported. *)
let test_allowlisted_fixture_is_clean () =
  let r = scan ~strict:true [ "lint_fixtures/allowlisted_sorted.ml" ] in
  Alcotest.(check (list string)) "no findings" [] (rules r);
  Alcotest.(check int) "one allowed" 1 (List.length r.Driver.allowed)

(* The Harness.Clock carve-out pattern: a wall-clock read under a
   justified D2 allow passes the gate (suppression reported), while the
   same call without a directive — d2_wallclock.ml, checked alongside —
   still fails.  The rule stays intact; only the one deadline-clock call
   site is sanctioned. *)
let test_clock_allow_pattern () =
  let r = scan ~strict:true [ "lint_fixtures/allowlisted_clock.ml" ] in
  Alcotest.(check (list string)) "no findings" [] (rules r);
  (match r.Driver.allowed with
   | [ (f, _justification) ] ->
     Alcotest.(check string) "allowed rule is D2" "D2"
       (Finding.rule_id f.Finding.rule)
   | l -> Alcotest.failf "expected one allowed finding, got %d" (List.length l));
  let raw = scan ~strict:true [ "lint_fixtures/d2_wallclock.ml" ] in
  Alcotest.(check (list string)) "raw wall clock still fails" [ "D2" ]
    (rules raw)

(* ------------------------------------------------------------------ *)
(* The real tree                                                       *)
(* ------------------------------------------------------------------ *)

(* The repository's own sources scan clean: this is the same invocation
   CI uses as a hard gate (`detlint lib bin test`), run from the test
   sandbox one level down. *)
let test_real_tree_is_clean () =
  let roots =
    List.filter Sys.file_exists [ "../lib"; "../bin"; "../test" ]
  in
  if List.length roots < 3 then
    Alcotest.skip ()
  else begin
    let r = scan ~strict:false roots in
    List.iter
      (fun (f : Finding.t) ->
         Format.eprintf "unexpected finding: %a@." Finding.pp_human f)
      r.Driver.findings;
    Alcotest.(check (list string)) "no findings" [] (rules r);
    Alcotest.(check bool) "scanned a real tree" true (r.Driver.files > 50);
    Alcotest.(check bool) "deliberate allowlists present" true
      (List.length r.Driver.allowed >= 5)
  end

(* lint_fixtures is skipped when reached as a *child* (that is why the
   gate can scan test/ at all), yet scanned when named as a root. *)
let test_fixture_dir_skipped_as_child () =
  let r = scan ~strict:false [ "." ] in
  List.iter
    (fun (f : Finding.t) ->
       Alcotest.(check bool)
         ("finding outside lint_fixtures: " ^ f.Finding.file) false
         (String.length f.Finding.file >= 13
          && String.sub f.Finding.file 0 13 = "lint_fixtures"))
    r.Driver.findings

(* ------------------------------------------------------------------ *)
(* Directives and report plumbing                                      *)
(* ------------------------------------------------------------------ *)

(* Built at runtime so the opener never appears literally in this file. *)
let directive body = "(" ^ "* detlint: " ^ body ^ " *" ^ ")\nlet x = 1\n"

let test_malformed_directives_are_errors () =
  let expect_error body =
    match Allow.scan ~file:"inline.ml" (directive body) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "directive %S should be a scan error" body
  in
  expect_error "allow D9 nonsense rule";
  expect_error "allow D5";  (* justification is mandatory *)
  expect_error "frobnicate the gate"

let test_wellformed_directives_parse () =
  let expect_rule body rule line =
    match Allow.scan ~file:"inline.ml" (directive body) with
    | Error e -> Alcotest.failf "directive %S rejected: %s" body e
    | Ok t ->
      Alcotest.(check bool) (body ^ " permits") true
        (Allow.permits t rule ~line <> None)
  in
  (* The directive sits on line 1: it covers findings on lines 1 and 2. *)
  expect_rule "sorted" Finding.D3 2;
  expect_rule "allow D5 physical identity is the point" Finding.D5 1;
  match Allow.scan ~file:"inline.ml" (directive "sorted") with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check bool) "does not cover other rules" true
      (Allow.permits t Finding.D5 ~line:2 = None);
    Alcotest.(check bool) "does not cover distant lines" true
      (Allow.permits t Finding.D3 ~line:4 = None)

(* Edge cases on the scanner itself: punctuation-heavy justifications,
   CRLF line endings, and a directive on the file's final line (no
   trailing newline) must all parse, with justifications preserved
   verbatim. *)
let test_directive_edge_cases () =
  let reason_of source rule ~line =
    match Allow.scan ~file:"inline.ml" source with
    | Error e -> Alcotest.failf "scan rejected: %s" e
    | Ok t ->
      (match Allow.permits t rule ~line with
       | None -> Alcotest.failf "no %s entry at line %d" (Finding.rule_id rule) line
       | Some why -> why)
  in
  (* Colons and quotes in the justification survive verbatim. *)
  let why = "cache key: \"host:port\" pairs; see DESIGN.md \xc2\xa717" in
  Alcotest.(check string) "punctuation-heavy justification" why
    (reason_of (directive ("allow D5 " ^ why)) Finding.D5 ~line:1);
  (* CRLF endings: the trailing \r sits outside the comment closer and
     must not leak into the justification or shift line numbers. *)
  let crlf =
    "let a = 1\r\n"
    ^ "(" ^ "* detlint: allow A5 bounded by construction *" ^ ")\r\n"
    ^ "let b = 2\r\n"
  in
  Alcotest.(check string) "CRLF justification" "bounded by construction"
    (reason_of crlf Finding.A5 ~line:3);
  (* Directive on the very last line, no trailing newline. *)
  let last = "let a = 1\n(" ^ "* detlint: sorted folded into a sum *" ^ ")" in
  Alcotest.(check string) "last-line directive" "folded into a sum"
    (reason_of last Finding.D3 ~line:2)

let test_rule_ids_roundtrip () =
  List.iter
    (fun r ->
       Alcotest.(check (option string)) "roundtrip" (Some (Finding.rule_id r))
         (Option.map Finding.rule_id (Finding.rule_of_id (Finding.rule_id r))))
    Finding.all_rules

let () =
  Alcotest.run "lint"
    [ ("fixtures",
       [ Alcotest.test_case "one finding per fixture" `Quick
           test_one_finding_per_fixture;
         Alcotest.test_case "golden JSON report" `Quick
           test_fixtures_match_golden;
         Alcotest.test_case "allowlisted fixture clean" `Quick
           test_allowlisted_fixture_is_clean;
         Alcotest.test_case "clock D2 allow pattern" `Quick
           test_clock_allow_pattern ]);
      ("tree",
       [ Alcotest.test_case "real tree scans clean" `Quick
           test_real_tree_is_clean;
         Alcotest.test_case "fixtures skipped as child dir" `Quick
           test_fixture_dir_skipped_as_child ]);
      ("directives",
       [ Alcotest.test_case "malformed directives error" `Quick
           test_malformed_directives_are_errors;
         Alcotest.test_case "wellformed directives parse" `Quick
           test_wellformed_directives_parse;
         Alcotest.test_case "scanner edge cases" `Quick
           test_directive_edge_cases;
         Alcotest.test_case "rule ids roundtrip" `Quick
           test_rule_ids_roundtrip ]);
    ]
