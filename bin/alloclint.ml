(* alloclint — the hot-path allocation gate (DESIGN.md §17).

   Usage: alloclint [--build DIR] [--source-root DIR] [--json FILE]
                    [--verbose] [PATH...]

   Reads typedtrees from the dune build tree (run `dune build @check`
   first so every unit has a .cmt), resolves the hot-path roots
   ([@@alloc.zero] attributes plus the engine registry), and walks the
   call graph from each root with the A1–A5 rules.  Roots name source
   directories relative to the project root (default: lib).  Exits 0
   when no unallowlisted finding remains, 1 when findings stand, 2 on
   errors (missing build tree, stale registry, malformed allowlist). *)

let () =
  let build_dir = ref (Filename.concat "_build" "default") in
  let source_root = ref "." in
  let json_path = ref "" in
  let verbose = ref false in
  let roots = ref [] in
  let spec =
    [ ("--build", Arg.Set_string build_dir,
       "DIR dune build tree holding the .cmt files (default _build/default)");
      ("--source-root", Arg.Set_string source_root,
       "DIR directory the cmt source paths are relative to (default .)");
      ("--json", Arg.Set_string json_path,
       "FILE also write the machine-readable report to FILE");
      ("--verbose", Arg.Set verbose,
       " list allowlisted (suppressed) findings with their justifications") ]
  in
  let usage =
    "alloclint [--build DIR] [--source-root DIR] [--json FILE] [--verbose] \
     [PATH...]"
  in
  Arg.parse (Arg.align spec) (fun p -> roots := p :: !roots) usage;
  let roots = match List.rev !roots with [] -> [ "lib" ] | rs -> rs in
  match
    Lint.Alloc_driver.scan ~build_dir:!build_dir ~source_root:!source_root
      roots
  with
  | Error e ->
    prerr_endline ("alloclint: error: " ^ e);
    exit 2
  | Ok result ->
    if !json_path <> "" then
      Out_channel.with_open_text !json_path (fun oc ->
          Out_channel.output_string oc (Lint.Alloc_report.to_json result));
    if !verbose then
      List.iter
        (fun (f, reason) ->
           Format.printf "%a  (allowed: %s)@." Lint.Finding.pp_human f reason)
        result.Lint.Alloc_driver.allowed;
    Format.printf "%a" Lint.Alloc_report.pp_human result;
    exit (if result.Lint.Alloc_driver.findings = [] then 0 else 1)
