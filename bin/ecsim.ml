(* ecsim: run and inspect eventual-consistency scenarios from the command
   line.

     ecsim list
     ecsim run --scenario partition --impl alg5 -n 5 --verbose
     ecsim check --scenario minority --impl paxos   (exit 1 on violations)
     ecsim run --spec finding.spec --timeline
     ecsim cht --crash 1:14 --rounds 5

   Every subcommand decodes its flags — or a builder spec file
   ([--spec FILE], the stable text form of [Harness.Builder]) — into one
   declarative builder value through a single shared decoder, and every
   run goes through [Builder.run]: the same code path as the test suite,
   the explorer and recorded repro files, so a run is deterministic in
   its spec. *)

open Simulator
open Ec_core
open Cmdliner
module Builder = Harness.Builder

(* ------------------------------------------------------------------ *)
(* Scenario catalogue (declarative presets over the builder)           *)
(* ------------------------------------------------------------------ *)

type scenario = {
  sc_name : string;
  sc_doc : string;
  sc_build : n:int -> seed:int -> deadline:int -> Builder.stack -> Builder.t;
  sc_default_n : int;
}

let oracle ?(pre = Detectors.Omega.Self_trust) stabilize_at =
  Harness.Scenario.Oracle { stabilize_at; pre }

let scenarios =
  [ { sc_name = "stable";
      sc_doc = "failure-free, Omega stable from time 0";
      sc_default_n = 3;
      sc_build =
        (fun ~n ~seed ~deadline stack ->
           { (Builder.create ~seed ~n ~deadline stack) with
             Builder.omega = Some (oracle 0) }) };
    { sc_name = "late-omega";
      sc_doc = "failure-free, Omega stabilizes at deadline/3 (self-trust before)";
      sc_default_n = 3;
      sc_build =
        (fun ~n ~seed ~deadline stack ->
           { (Builder.create ~seed ~n ~deadline stack) with
             Builder.omega = Some (oracle (deadline / 3)) }) };
    { sc_name = "partition";
      sc_doc = "two blocks with per-block leaders, healing at deadline/3";
      sc_default_n = 5;
      sc_build =
        (fun ~n ~seed ~deadline stack ->
           let heal = deadline / 3 in
           let left = List.filter (fun p -> p < (n + 1) / 2) (Types.all_procs n) in
           let right = List.filter (fun p -> p >= (n + 1) / 2) (Types.all_procs n) in
           { (Builder.create ~seed ~n ~deadline stack) with
             Builder.plan =
               [ Explore.Adversity.Partition
                   { left; from_time = 5; until_time = heal } ];
             omega =
               Some (oracle ~pre:(Detectors.Omega.Blockwise [ left; right ]) heal)
           }) };
    { sc_name = "minority";
      sc_doc = "all but two processes crash at deadline/4 (no correct majority)";
      sc_default_n = 5;
      sc_build =
        (fun ~n ~seed ~deadline stack ->
           { (Builder.create ~seed ~n ~deadline stack) with
             Builder.plan =
               List.filter_map
                 (fun p ->
                    if p >= 2 then
                      Some (Explore.Adversity.Crash { proc = p; at = deadline / 4 })
                    else None)
                 (Types.all_procs n);
             omega = Some (oracle 0) }) };
    { sc_name = "elected";
      sc_doc = "no oracle: heartbeat-based leader election, leader crashes mid-run";
      sc_default_n = 4;
      sc_build =
        (fun ~n ~seed ~deadline stack ->
           { (Builder.create ~seed
                ~delay:(Builder.Uniform { min_d = 1; max_d = 3 })
                ~n ~deadline stack)
             with
             Builder.plan =
               [ Explore.Adversity.Crash { proc = 0; at = deadline / 2 } ];
             omega = Some (Harness.Scenario.Elected { initial_timeout = 6 }) })
    };
  ]

let find_scenario name = List.find_opt (fun s -> s.sc_name = name) scenarios

let impls =
  [ ("alg5", Builder.Etob Harness.Scenario.Algorithm_5);
    ("paxos", Builder.Etob Harness.Scenario.Paxos_baseline);
    ("alg1", Builder.Etob Harness.Scenario.Algorithm_1_over_4);
    ("gossip", Builder.Gossip) ]

(* ------------------------------------------------------------------ *)
(* The shared option decoder                                           *)
(* ------------------------------------------------------------------ *)

(* The catalogue's workload policy: [posts] explicit messages spread over
   half the horizon, or 3 per process at the default cadence. *)
let workload_of ~n ~deadline ~posts =
  if posts > 0 then
    Builder.Posts
      { count = posts; from_time = 8; every = max 2 (deadline / (2 * posts)) }
  else
    Builder.Posts
      { count = 3 * n; from_time = 8; every = max 2 (deadline / (6 * n)) }

(* Decode one builder from either a spec file (which wins outright — it
   carries its own base, stack, workload and plan) or the scenario/impl
   flag catalogue.  Every run-shaped subcommand goes through here. *)
let decode ~spec ~scenario_name ~impl_name ~n ~seed ~deadline ~posts =
  match spec with
  | Some path -> Builder.read path
  | None ->
    (match (find_scenario scenario_name, List.assoc_opt impl_name impls) with
     | None, _ -> Error ("unknown scenario " ^ scenario_name)
     | _, None -> Error ("unknown implementation " ^ impl_name)
     | Some sc, Some stack ->
       let n = if n = 0 then sc.sc_default_n else n in
       Ok
         { (sc.sc_build ~n ~seed ~deadline stack) with
           Builder.workload = workload_of ~n ~deadline ~posts })

(* --- the shared flags, declared once --- *)

let spec_arg =
  let doc =
    "Load the run from a builder spec file ($(b,ecsim-spec v1), or a legacy \
     $(b,ecsim-explore-repro v1) file).  The spec carries its own base, \
     stack, workload and adversity plan, so it overrides \
     $(b,--scenario)/$(b,--impl)/$(b,-n)/$(b,--seed)/$(b,--deadline)/\
     $(b,--posts)."
  in
  Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"FILE" ~doc)

let scenario_arg =
  let doc = "Scenario name (see $(b,ecsim list))." in
  Arg.(value & opt string "stable" & info [ "scenario"; "s" ] ~docv:"NAME" ~doc)

let impl_arg =
  let doc = "Broadcast implementation: alg5, paxos, alg1 or gossip." in
  Arg.(value & opt string "alg5" & info [ "impl"; "i" ] ~docv:"IMPL" ~doc)

let n_arg =
  let doc = "Number of processes (0 = scenario default)." in
  Arg.(value & opt int 0 & info [ "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let deadline_arg =
  let doc = "Run horizon in ticks." in
  Arg.(value & opt int 240 & info [ "deadline"; "d" ] ~docv:"TICKS" ~doc)

let posts_arg =
  let doc = "Number of broadcast messages in the workload (0 = default)." in
  Arg.(value & opt int 0 & info [ "posts" ] ~docv:"COUNT" ~doc)

let verbose_arg =
  let doc = "Print the full input/output trace." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let trace_out_arg =
  let doc =
    "Stream the run's event trace to this file ($(b,jsonl) or the framed \
     binary format; see $(b,--trace-format)).  A binary trace additionally \
     embeds the run's spec record, so it replays with \
     $(b,ecsim explore --replay FILE)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace file format: $(b,jsonl) (one JSON object per event line) or \
     $(b,bin) (framed binary, CRC-checksummed).  Defaults by suffix of \
     $(b,--trace-out): $(b,.bin) means binary, anything else jsonl."
  in
  Arg.(value & opt (some string) None & info [ "trace-format" ] ~docv:"FMT" ~doc)

(* Suffix detection: [--trace-format] wins when given; otherwise ".bin"
   selects the binary codec. *)
let resolve_trace_format ~path = function
  | Some name ->
    (match Builder.trace_format_of_name name with
     | Some f -> Ok f
     | None -> Error ("unknown trace format " ^ name ^ " (jsonl or bin)"))
  | None ->
    Ok (if Filename.check_suffix path ".bin" then Builder.Binary else Builder.Jsonl)

let timeline_arg =
  let doc = "Print an ASCII timeline of the run." in
  Arg.(value & flag & info [ "timeline"; "t" ] ~doc)

(* One cmdliner term producing the decoded builder: the per-subcommand
   flag wiring that used to be copied into run/check/sweep lives here
   exactly once. *)
let builder_term =
  let combine spec scenario_name impl_name n seed deadline posts =
    decode ~spec ~scenario_name ~impl_name ~n ~seed ~deadline ~posts
  in
  Term.(const combine $ spec_arg $ scenario_arg $ impl_arg $ n_arg $ seed_arg
        $ deadline_arg $ posts_arg)

(* Rebase a decoded builder onto another engine seed (sweep). *)
let with_seed b seed =
  match b.Builder.base with
  | Builder.Decl d -> { b with Builder.base = Builder.Decl { d with Builder.seed } }
  | Builder.Opaque s ->
    { b with Builder.base = Builder.Opaque { s with Harness.Scenario.seed } }

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let print_report setup trace ~verbose =
  if verbose then begin
    print_endline "--- trace ---";
    List.iter (fun e -> Format.printf "%a@." Trace.pp_entry e) (Trace.entries trace);
    print_endline "--- end trace ---"
  end;
  let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
  let report = Properties.etob_report run in
  Format.printf "pattern: %a@." Failures.pp setup.Harness.Scenario.pattern;
  Format.printf "messages sent: %d, delivered: %d, dropped: %d@."
    (Trace.sent trace) (Trace.delivered trace) (Trace.dropped trace);
  List.iter
    (fun p ->
       Format.printf "final d_p%d (%d msgs): %a@." p
         (List.length (Properties.final_d run p))
         App_msg.pp_seq (Properties.final_d run p))
    (Failures.correct setup.Harness.Scenario.pattern);
  Format.printf "%a@." Properties.pp_etob_report report;
  (match Harness.Scenario.omega_stabilization setup with
   | Some tau -> Format.printf "tau_Omega=%d, measured convergence tau=%d@." tau
                   (Properties.etob_convergence_time report)
   | None -> Format.printf "measured convergence tau=%d@."
               (Properties.etob_convergence_time report));
  report

(* Run a decoded builder and report: shared by run and check.  The
   builder's own checkers (spec files may carry them) are evaluated too,
   and their violations printed. *)
let execute_report b ~verbose ~timeline =
  let setup = Builder.setup_of b in
  let o = Builder.run ~digest:true b in
  let trace = match o.Builder.trace with Some t -> t | None -> assert false in
  if timeline then
    print_string (Harness.Timeline.render ~pattern:setup.Harness.Scenario.pattern trace);
  let report = print_report setup trace ~verbose in
  List.iter (fun v -> Format.printf "spec violation: %s@." v) o.Builder.violations;
  Format.printf "trace digest %s@." o.Builder.digest;
  (report, o)

(* --- list --- *)

let list_cmd =
  let doc = "List the available scenarios and implementations." in
  let run () =
    print_endline "scenarios:";
    List.iter (fun s -> Printf.printf "  %-12s %s\n" s.sc_name s.sc_doc) scenarios;
    print_endline "implementations:";
    List.iter (fun (name, stack) ->
        Printf.printf "  %-12s %s\n" name
          (match stack with
           | Builder.Etob Harness.Scenario.Algorithm_5 ->
             "ETOB directly from Omega (Algorithm 5)"
           | Builder.Etob Harness.Scenario.Paxos_baseline ->
             "strong TOB from repeated consensus"
           | Builder.Etob Harness.Scenario.Algorithm_1_over_4 ->
             "ETOB through the EC transformation (Algorithms 1 + 4)"
           | _ ->
             "leaderless gossip ordering (no Omega; the negative baseline)"))
      impls
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- run --- *)

let run_cmd =
  let doc = "Run a scenario (or a spec file) and print the delivered sequences and the property report." in
  let run builder verbose timeline trace_out trace_format =
    match builder with
    | Error msg -> `Error (false, msg)
    | Ok b ->
      (match trace_out with
       | None -> ignore (execute_report b ~verbose ~timeline); `Ok ()
       | Some path ->
         (match resolve_trace_format ~path trace_format with
          | Error msg -> `Error (false, msg)
          | Ok format ->
            let b_run = { b with Builder.trace_out = Some (path, format) } in
            let _, o = execute_report b_run ~verbose ~timeline in
            (* A binary trace becomes a self-contained replay unit by
               appending the run's spec record — when the builder is
               declarative enough to have one. *)
            (match format with
             | Builder.Binary ->
               (try
                  Builder.append_binary_spec path ~digest:o.Builder.digest
                    ~violations:o.Builder.violations b
                with Invalid_argument _ ->
                  Format.printf
                    "note: run not serializable; %s has no spec record@." path)
             | Builder.Jsonl -> ());
            Format.printf "trace written to %s (%s)@." path
              (Builder.trace_format_name format);
            `Ok ()))
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(ret (const run $ builder_term $ verbose_arg $ timeline_arg
               $ trace_out_arg $ trace_format_arg))

(* --- check --- *)

let check_cmd =
  let doc =
    "Run a scenario (or a spec file) and exit non-zero if any ETOB \
     property — or any checker the spec carries — is violated."
  in
  let run builder verbose =
    match builder with
    | Error msg -> `Error (false, msg)
    | Ok b ->
      let report, o = execute_report b ~verbose ~timeline:false in
      if Properties.etob_base_ok report
      && report.Properties.causal_order.Properties.ok
      && o.Builder.violations = []
      then begin print_endline "CHECK PASSED"; `Ok () end
      else `Error (false, "property violations found")
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(ret (const run $ builder_term $ verbose_arg))

(* --- sweep --- *)

(* Everything a worker domain sends back per seed: plain data, no shared
   state. *)
type sweep_outcome = {
  sw_ok : bool;
  sw_tau : int;
  sw_sent : int;
  sw_delivered : int;
  sw_dropped : int;
  sw_latency : int array array;  (* per destination process *)
}

let sweep_cmd =
  let doc =
    "Run one scenario (or spec file) under a range of seeds in parallel \
     (one run per seed, fanned over OCaml domains) and print aggregated \
     verdicts and latency histograms."
  in
  let seeds_arg =
    let doc = "Number of seeds to sweep (base seed up to base+count-1)." in
    Arg.(value & opt int 64 & info [ "seeds" ] ~docv:"COUNT" ~doc)
  in
  let domains_arg =
    let doc = "Worker domains (0 = pick from the hardware)." in
    Arg.(value & opt int 0 & info [ "domains"; "j" ] ~docv:"D" ~doc)
  in
  let run builder seeds domains =
    match builder with
    | Error msg -> `Error (false, msg)
    | Ok b ->
      let n = Builder.n_of b in
      let base_seed = Builder.seed_of b in
      let domains =
        if domains > 0 then domains else Harness.Sweep.default_domains ()
      in
      let run_one ~seed =
        (* Observe the run twice over: a full trace for the property
           checkers plus counters for the latency histograms. *)
        let trace = Trace.create ~n in
        let c = Sink.counters ~n in
        let b =
          { (with_seed b seed) with
            Builder.checkers = [];
            sink = Some (Sink.tee (Sink.recorder trace) (Sink.counters_sink c)) }
        in
        ignore (Builder.run b);
        let pattern = (Builder.setup_of b).Harness.Scenario.pattern in
        let run = Properties.etob_run_of_trace pattern trace in
        let report = Properties.etob_report run in
        { sw_ok =
            Properties.etob_base_ok report
            && report.Properties.causal_order.Properties.ok;
          sw_tau = Properties.etob_convergence_time report;
          sw_sent = Trace.sent trace;
          sw_delivered = Trace.delivered trace;
          sw_dropped = Trace.dropped trace;
          sw_latency = Array.init n (Sink.latencies c) }
      in
      let seed_list = Harness.Sweep.seed_range ~base:base_seed ~count:seeds in
      let results = Harness.Sweep.map ~domains ~seeds:seed_list run_one in
      let outcomes = List.map (fun r -> r.Harness.Sweep.value) results in
      Format.printf "sweep: stack=%s n=%d seeds=%d..%d domains=%d@."
        (Builder.stack_name b.Builder.stack) n base_seed
        (base_seed + seeds - 1) domains;
      let verdicts =
        Harness.Sweep.verdicts results ~ok:(fun o -> o.sw_ok)
      in
      Format.printf "verdicts: %a@." Harness.Sweep.pp_verdicts verdicts;
      (match
         Harness.Sweep.mean_stddev
           (List.map (fun o -> float_of_int o.sw_tau) outcomes)
       with
       | Some (mean, stddev) ->
         Format.printf "convergence tau: mean=%.1f stddev=%.1f@." mean stddev
       | None -> ());
      let total f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
      Format.printf "messages: sent=%d delivered=%d dropped=%d@."
        (total (fun o -> o.sw_sent)) (total (fun o -> o.sw_delivered))
        (total (fun o -> o.sw_dropped));
      (match
         Harness.Sweep.merged_latency_stats
           (List.concat_map (fun o -> Array.to_list o.sw_latency) outcomes)
       with
       | Some s -> Format.printf "delivery latency (all procs): %a@." Harness.Stats.pp s
       | None -> ());
      List.iter
        (fun p ->
           match
             Harness.Sweep.merged_latency_stats
               (List.map (fun o -> o.sw_latency.(p)) outcomes)
           with
           | Some s -> Format.printf "  p%d: %a@." p Harness.Stats.pp s
           | None -> Format.printf "  p%d: no deliveries@." p)
        (Types.all_procs n);
      if verdicts.Harness.Sweep.failed_seeds = [] then `Ok ()
      else `Error (false, "property violations in sweep")
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(ret (const run $ builder_term $ seeds_arg $ domains_arg))

(* --- explore --- *)

let pp_explore_outcome (o : Explore.Explorer.outcome) =
  Format.printf "violating plan (%d adversities):@.%a@."
    (Explore.Adversity.size o.Explore.Explorer.plan)
    Explore.Adversity.pp o.Explore.Explorer.plan;
  List.iter
    (fun v -> Format.printf "  violation: %s@." v)
    o.Explore.Explorer.violations;
  Format.printf "engine seed %d, trace digest %s@." o.Explore.Explorer.seed
    (if o.Explore.Explorer.digest = "" then "(run raised)"
     else o.Explore.Explorer.digest)

let mkdirs dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  go dir

(* The acceptance gate, CI-sized: the faithful Algorithm 5 (crash-stop and
   crash-recovery alike) survives the whole budget clean, and the explorer
   finds every seeded mutant — protocol bugs and the recovery-path amnesia
   bug — shrinks the finding to at most 3 adversities, and replays it
   deterministically through a repro-file roundtrip.  One mutant finding
   additionally makes the round trip through the builder-spec text form
   (found -> to_lines -> of_lines -> run), which must reproduce the trace
   digest byte for byte.  When [artifacts] is set, every shrunk finding
   (and any unexpected faithful flag) is written there, repro and spec
   files alike, so CI can upload them on failure. *)
let explore_smoke ~domains ~budget ~seed ~artifacts =
  let module E = Explore.Explorer in
  let module R = Explore.Repro in
  let write_artifact name contents =
    match artifacts with
    | None -> ()
    | Some dir ->
      mkdirs dir;
      let path = Filename.concat dir name in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc contents);
      Format.printf "  artifact: %s@." path
  in
  let clean_gate label target =
    Format.printf "smoke: faithful %s over %d plans...@." label budget;
    let r = E.explore ~domains target ~seed ~budget ~max_adversities:4 () in
    match r.E.found with
    | Some o ->
      pp_explore_outcome o;
      write_artifact ("faithful-" ^ label ^ ".repro")
        (R.to_string (R.of_outcome target o));
      Error
        (Printf.sprintf "faithful %s was flagged: explorer or protocol bug"
           label)
    | None ->
      Format.printf "  clean (%d plans)@." r.E.plans_run;
      Ok ()
  in
  let check_mutant name target =
    let r = E.explore ~domains target ~seed ~budget ~max_adversities:4 () in
    match r.E.found with
    | None ->
      Error
        (Printf.sprintf "mutant %s: no violation within %d plans" name budget)
    | Some o ->
      let s = E.shrink target o in
      Format.printf
        "smoke: mutant %-22s found at plan %d, shrunk %d -> %d adversities@."
        name (r.E.plans_run - 1)
        (Explore.Adversity.size o.E.plan)
        (Explore.Adversity.size s.E.plan);
      write_artifact ("mutant-" ^ name ^ ".repro")
        (R.to_string (R.of_outcome target s));
      if Explore.Adversity.size s.E.plan > 3 then
        Error
          (Printf.sprintf "mutant %s: shrunk plan still has %d adversities"
             name
             (Explore.Adversity.size s.E.plan))
      else begin
        (* Repro determinism, through the text roundtrip. *)
        let repro = R.of_outcome target s in
        match R.of_string (R.to_string repro) with
        | Error msg ->
          Error (Printf.sprintf "mutant %s: repro roundtrip: %s" name msg)
        | Ok repro ->
          (match R.replay repro with
           | Ok _ -> Ok ()
           | Error msg ->
             Error (Printf.sprintf "mutant %s: replay: %s" name msg))
      end
  in
  (* The builder-spec flow: one finding travels the whole new-format
     pipeline.  Explore, shrink, serialize the builder to spec text, parse
     it back, re-run — the violation must survive and the trace digest
     must match byte for byte.  The spec file lands in the artifact
     directory beside the repro files. *)
  let spec_gate () =
    let mutant = List.hd Etob_omega.all_mutations in
    let name = Etob_omega.mutation_name mutant in
    let target = { E.default_target with E.mutation = Some mutant } in
    Format.printf "smoke: builder-spec flow (mutant %s)...@." name;
    let r = E.explore ~domains target ~seed ~budget ~max_adversities:4 () in
    match r.E.found with
    | None -> Error "spec flow: mutant not found within the budget"
    | Some o ->
      let s = E.shrink target o in
      let b = E.builder_of target ~seed:s.E.seed s.E.plan in
      let text =
        Builder.to_string ~digest:s.E.digest ~violations:s.E.violations b
      in
      write_artifact ("spec-flow-" ^ name ^ ".spec") text;
      (match Builder.of_string text with
       | Error msg -> Error ("spec flow: parse: " ^ msg)
       | Ok b' ->
         let o' = Builder.run ~digest:true ~catch:true b' in
         if o'.Builder.violations = [] then
           Error "spec flow: replay lost the violation"
         else if o'.Builder.digest <> s.E.digest then
           Error
             (Printf.sprintf "spec flow: digest mismatch (%s vs %s)"
                o'.Builder.digest s.E.digest)
         else begin
           Format.printf "  spec roundtrip reproduced digest %s@." s.E.digest;
           (* Binary-artifact leg: stream the same finding to a framed
              binary trace, embed its spec record, and replay from the
              artifact alone — the digest must survive the format change. *)
           let bin_path, keep =
             match artifacts with
             | Some dir ->
               mkdirs dir;
               ( Filename.concat dir ("spec-flow-" ^ name ^ ".trace.bin"),
                 true )
             | None -> (Filename.temp_file "ecsim-smoke" ".trace.bin", false)
           in
           let ob =
             Builder.run ~digest:true ~catch:true
               { b' with Builder.trace_out = Some (bin_path, Builder.Binary) }
           in
           Builder.append_binary_spec bin_path ~digest:ob.Builder.digest
             ~violations:ob.Builder.violations b';
           if keep then Format.printf "  artifact: %s@." bin_path;
           let verdict =
             match Builder.binary_spec bin_path with
             | Error msg -> Error ("binary artifact: " ^ msg)
             | Ok text2 ->
               (match Builder.of_string text2 with
                | Error msg -> Error ("binary artifact: parse: " ^ msg)
                | Ok b2 ->
                  let o2 = Builder.run ~digest:true ~catch:true b2 in
                  if o2.Builder.violations = [] then
                    Error "binary artifact: replay lost the violation"
                  else if o2.Builder.digest <> s.E.digest then
                    Error
                      (Printf.sprintf
                         "binary artifact: digest mismatch (%s vs %s)"
                         o2.Builder.digest s.E.digest)
                  else begin
                    Format.printf
                      "  binary artifact reproduced digest %s@." s.E.digest;
                    Ok ()
                  end)
           in
           if not keep then (try Sys.remove bin_path with Sys_error _ -> ());
           verdict
         end)
  in
  let rec all = function
    | [] -> Ok ()
    | (name, target) :: rest ->
      (match check_mutant name target with
       | Ok () -> all rest
       | Error _ as e -> e)
  in
  let faithful = E.default_target in
  let recovering = { faithful with E.recovery = true } in
  let ( let* ) = Result.bind in
  let* () = clean_gate "alg5" faithful in
  let* () =
    all
      (List.map
         (fun m ->
            ( Etob_omega.mutation_name m,
              { faithful with E.mutation = Some m } ))
         Etob_omega.all_mutations)
  in
  (* Recovery gate: same story under crash-recovery adversities. *)
  let* () = clean_gate "alg5+recovery" recovering in
  let* () =
    all
      (List.map
         (fun m ->
            ( Recoverable.mutation_name m,
              { recovering with E.rmutation = Some m } ))
         Recoverable.all_mutations)
  in
  (* Partition liveness gate: the anti-entropy stack under the watchdog.
     Generated plans now include message-LOSING partitions (split-brain,
     minority isolation, one-way links, flapping bridges) that heal far
     past the last post — only the digest exchange can repair them, and
     the watchdog checks that every correct process actually converges.
     The faithful stack must survive clean; the skip-digest mutant (the
     layer that never advertises) must be caught. *)
  let partitioned = { faithful with E.ae = true; watchdog = true } in
  let* () = clean_gate "alg5+ae+watchdog" partitioned in
  let* () =
    all
      (List.map
         (fun m ->
            ( Anti_entropy.mutation_name m,
              { partitioned with E.ae_mutation = Some m } ))
         Anti_entropy.all_mutations)
  in
  let* () = spec_gate () in
  print_endline "SMOKE PASSED";
  Ok ()

(* Replay a finding file of any of the three formats.  Legacy repro files
   go through [Explore.Repro.replay] (which re-derives the target); spec
   files parse to a builder, re-run, and must reproduce the recorded
   digest and (when the file records violations) some violation; binary
   trace artifacts carry their spec text in an embedded record and replay
   through the same spec path. *)
let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let replay_spec_content content =
  match Builder.of_string content with
  | Error msg -> `Error (false, "spec parse: " ^ msg)
  | Ok b ->
    let o = Builder.run ~digest:true ~catch:true b in
    List.iter (fun v -> Format.printf "  violation: %s@." v) o.Builder.violations;
    Format.printf "trace digest %s@." o.Builder.digest;
    let expects_violation =
      List.exists
        (fun l -> String.length (String.trim l) > 10
                  && String.sub (String.trim l) 0 10 = "violation ")
        (String.split_on_char '\n' content)
    in
    (match Builder.recorded_digest content with
     | Some d when d <> o.Builder.digest ->
       `Error
         ( false,
           Printf.sprintf "digest mismatch: recorded %s, got %s" d
             o.Builder.digest )
     | _ ->
       if expects_violation && o.Builder.violations = [] then
         `Error (false, "recorded violation did not reproduce")
       else begin
         print_endline "REPLAY REPRODUCED";
         `Ok ()
       end)

let replay_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> `Error (false, msg)
  | content ->
    if starts_with ~prefix:"ECTRACE" content then
      (* A framed binary trace: replay the spec text it embeds. *)
      (match Builder.binary_spec path with
       | Error msg -> `Error (false, "binary trace: " ^ msg)
       | Ok text ->
         Format.printf "replaying embedded spec of %s@." path;
         replay_spec_content text)
    else if starts_with ~prefix:Builder.header content then
      replay_spec_content content
    else
      (match Explore.Repro.read path with
       | Error msg -> `Error (false, "repro parse: " ^ msg)
       | Ok r ->
         (match Explore.Repro.replay r with
          | Ok o ->
            pp_explore_outcome o;
            print_endline "REPLAY REPRODUCED";
            `Ok ()
          | Error msg -> `Error (false, "replay: " ^ msg)))

let explore_cmd =
  let doc =
    "Adversarially explore a protocol stack: enumerate bounded adversity \
     plans (crashes, partitions, delay spikes, drops, duplicates, leader \
     flapping), flag property violations, shrink findings to a minimal \
     plan and write deterministic repro/spec files."
  in
  let plans_arg =
    let doc = "Exploration budget: number of adversity plans to run." in
    Arg.(value & opt int 500 & info [ "plans" ] ~docv:"COUNT" ~doc)
  in
  let max_adv_arg =
    let doc = "Maximum adversities per generated plan." in
    Arg.(value & opt int 4 & info [ "max-adversities" ] ~docv:"K" ~doc)
  in
  let mutant_arg =
    let doc =
      "Seed a known bug: skip-dependency-wait, forget-promote-prefix, \
       drop-graph-union or disable-stale-guard (Algorithm 5), \
       skip-log-replay (the crash-recovery path; implies $(b,--recovery)), \
       or skip-digest (the anti-entropy layer; implies $(b,--ae))."
    in
    Arg.(value & opt (some string) None & info [ "mutant" ] ~docv:"NAME" ~doc)
  in
  let recovery_arg =
    let doc =
      "Explore the crash-recovery stack: Algorithm 5 under the durable \
       write-ahead log and retransmission links, with downtime windows \
       and disk faults among the generated adversities."
    in
    Arg.(value & flag & info [ "recovery" ] ~doc)
  in
  let ae_arg =
    let doc =
      "Stack the anti-entropy digest layer beside Algorithm 5 and admit \
       message-losing partitions (split-brain, minority isolation, one-way \
       links, flapping bridges) among the generated adversities."
    in
    Arg.(value & flag & info [ "ae" ] ~doc)
  in
  let watchdog_arg =
    let doc =
      "Check liveness, not just safety: after each plan's adversities \
       settle, every correct process must reach the converged state within \
       the computed progress bound or the plan is flagged."
    in
    Arg.(value & flag & info [ "watchdog" ] ~doc)
  in
  let artifacts_arg =
    let doc =
      "In smoke mode, write every shrunk finding as a repro/spec file into \
       this directory (created if needed) so CI can upload them on failure."
    in
    Arg.(value & opt (some string) None & info [ "artifacts" ] ~docv:"DIR" ~doc)
  in
  let domains_arg =
    let doc =
      "Worker domains; 1 explores sequentially with early exit, more fans \
       plan chunks over domains via the sweep layer."
    in
    Arg.(value & opt int 1 & info [ "domains"; "j" ] ~docv:"D" ~doc)
  in
  let out_arg =
    let doc =
      "Write the (shrunk) finding to this file: builder-spec format for a \
       $(b,.spec) suffix, a framed binary trace (events plus embedded \
       spec record) for a $(b,.bin) suffix, legacy repro format otherwise."
    in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let replay_arg =
    let doc =
      "Replay a repro, spec or binary trace file (format auto-detected) \
       instead of exploring."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let smoke_arg =
    let doc =
      "Acceptance mode: the faithful Algorithm 5 must survive the budget \
       clean and every seeded mutant must be found, shrunk to <= 3 \
       adversities and replayed deterministically (one finding also \
       roundtrips through the builder-spec text form)."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let explore_spec_arg =
    let doc =
      "Read the exploration target off a builder spec file: base, stack, \
       workload, mutations and checkers come from the spec (its plan is \
       discarded — exploration generates plans); the spec's $(b,budget) \
       header, when present, overrides $(b,--plans)."
    in
    Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"FILE" ~doc)
  in
  let run impl_name n seed deadline posts plans max_adv mutant recovery ae
      watchdog domains out replay smoke artifacts spec =
    let module E = Explore.Explorer in
    match replay with
    | Some path -> replay_file path
    | None ->
      if smoke then
        match explore_smoke ~domains ~budget:plans ~seed ~artifacts with
        | Ok () -> `Ok ()
        | Error msg -> `Error (false, msg)
      else begin
        (* The target: read off a spec file, or assembled from the flag
           catalogue (a mutant name resolves in the Algorithm-5 namespace
           first, then recovery-path, then anti-entropy). *)
        let target_result =
          match spec with
          | Some path ->
            (match Builder.read path with
             | Error msg -> Error ("spec parse: " ^ msg)
             | Ok b ->
               E.target_of b
               |> Result.map (fun t ->
                   (t, Option.value b.Builder.budget ~default:plans)))
          | None ->
            (match E.impl_of_string impl_name with
             | None ->
               Error ("unknown implementation for explore: " ^ impl_name)
             | Some impl ->
               (match
                  Option.map
                    (fun name ->
                       match Etob_omega.mutation_of_string name with
                       | Some m -> `Etob m
                       | None ->
                         (match Ec_core.Recoverable.mutation_of_string name with
                          | Some m -> `Recovery m
                          | None ->
                            (match Anti_entropy.mutation_of_string name with
                             | Some m -> `Ae m
                             | None -> invalid_arg ("unknown mutant " ^ name))))
                    mutant
                with
                | exception Invalid_argument msg ->
                  Error
                    (Printf.sprintf "%s (known: %s)" msg
                       (String.concat ", "
                          (List.map Etob_omega.mutation_name
                             Etob_omega.all_mutations
                           @ List.map Ec_core.Recoverable.mutation_name
                               Ec_core.Recoverable.all_mutations
                           @ List.map Anti_entropy.mutation_name
                               Anti_entropy.all_mutations)))
                | parsed ->
                  let mutation =
                    match parsed with Some (`Etob m) -> Some m | _ -> None
                  in
                  let rmutation =
                    match parsed with Some (`Recovery m) -> Some m | _ -> None
                  in
                  let ae_mutation =
                    match parsed with Some (`Ae m) -> Some m | _ -> None
                  in
                  Ok
                    ( { E.default_target with
                        E.impl;
                        mutation;
                        rmutation;
                        ae_mutation;
                        recovery = recovery || rmutation <> None;
                        ae = ae || ae_mutation <> None;
                        watchdog;
                        n = (if n = 0 then E.default_target.E.n else n);
                        deadline;
                        posts =
                          (if posts = 0 then E.default_target.E.posts
                           else posts) },
                      plans )))
        in
        match target_result with
        | Error msg -> `Error (false, msg)
        | Ok (target, plans) ->
          Format.printf
            "explore: impl=%s mutant=%s recovery=%b ae=%b watchdog=%b \
             n=%d plans=%d max-adversities=%d domains=%d@."
            (E.impl_name target.E.impl)
            (match
               target.E.mutation, target.E.rmutation, target.E.ae_mutation
             with
             | Some m, _, _ -> Etob_omega.mutation_name m
             | None, Some m, _ -> Ec_core.Recoverable.mutation_name m
             | None, None, Some m -> Anti_entropy.mutation_name m
             | None, None, None -> "none")
            target.E.recovery target.E.ae target.E.watchdog target.E.n
            plans max_adv domains;
          let r =
            E.explore ~domains target ~seed ~budget:plans
              ~max_adversities:max_adv ()
          in
          (match r.E.found with
           | None ->
             Format.printf "clean: %d plans, no violation@." r.E.plans_run;
             `Ok ()
           | Some o ->
             Format.printf "violation at plan %d; shrinking...@."
               (r.E.plans_run - 1);
             let s = E.shrink target o in
             pp_explore_outcome s;
             (match out with
              | Some path ->
                (if Filename.check_suffix path ".spec" then
                   Builder.write path ~digest:s.E.digest
                     ~violations:s.E.violations
                     (E.builder_of target ~seed:s.E.seed s.E.plan)
                 else if Filename.check_suffix path ".bin" then begin
                   (* Binary trace artifact: re-run the shrunk finding
                      streaming its events, then embed the spec record so
                      the file replays on its own. *)
                   let b = E.builder_of target ~seed:s.E.seed s.E.plan in
                   let o =
                     Builder.run ~digest:true ~catch:true
                       { b with Builder.trace_out = Some (path, Builder.Binary) }
                   in
                   Builder.append_binary_spec path ~digest:o.Builder.digest
                     ~violations:s.E.violations b
                 end
                 else
                   Explore.Repro.write path (Explore.Repro.of_outcome target s));
                Format.printf "finding written to %s@." path
              | None -> ());
             `Error (false, "property violations found"))
      end
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(ret (const run $ impl_arg $ n_arg $ seed_arg $ deadline_arg
               $ posts_arg $ plans_arg $ max_adv_arg $ mutant_arg
               $ recovery_arg $ ae_arg $ watchdog_arg $ domains_arg
               $ out_arg $ replay_arg $ smoke_arg $ artifacts_arg
               $ explore_spec_arg))

(* --- soak --- *)

let soak_cmd =
  let doc =
    "Run a crash-safe soak campaign: long randomized adversity \
     exploration across legs, with per-run event budgets and monotonic \
     wall-clock deadlines (stuck runs are poisoned, not fatal), worker \
     quarantine with auto-shrunk replayable repros, a framed CRC32 \
     campaign journal ($(b,--resume) continues an interrupted campaign \
     deterministically), and a degradation ladder (halve concurrency, \
     skip poisoned seeds within a logged budget, only then abort).  \
     Exit 0 clean, 1 reproducible findings, 2 on unshrinkable findings \
     or an aborted campaign."
  in
  let legs_arg =
    let doc =
      "Comma-separated campaign legs (named explorer targets): alg5, \
       ae-watchdog, ae-watchdog-recovery."
    in
    Arg.(value & opt string "ae-watchdog,ae-watchdog-recovery"
         & info [ "legs" ] ~docv:"NAMES" ~doc)
  in
  let budget_arg =
    let doc = "Adversity plans per leg." in
    Arg.(value & opt int 200 & info [ "budget" ] ~docv:"PLANS" ~doc)
  in
  let seed_arg =
    let doc = "Base engine seed (plan i runs under seed+i)." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let max_adv_arg =
    let doc = "Maximum adversities per generated plan." in
    Arg.(value & opt int 4 & info [ "max-adversities" ] ~docv:"K" ~doc)
  in
  let event_budget_arg =
    let doc = "Per-run event budget before the guard declares the run stuck." in
    Arg.(value & opt int 200_000 & info [ "event-budget" ] ~docv:"EVENTS" ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-run wall-clock deadline in milliseconds (monotonic; a wedged \
       run is poisoned when it exceeds this)."
    in
    Arg.(value & opt int 10_000 & info [ "deadline-per-run" ] ~docv:"MS" ~doc)
  in
  let max_findings_arg =
    let doc = "Stop the campaign after this many quarantined findings." in
    Arg.(value & opt int 16 & info [ "max-findings" ] ~docv:"N" ~doc)
  in
  let max_poisoned_arg =
    let doc =
      "Coverage-sacrifice budget: poisoned seeds tolerated before the \
       campaign aborts."
    in
    Arg.(value & opt int 8 & info [ "max-poisoned" ] ~docv:"N" ~doc)
  in
  let domains_arg =
    let doc = "Worker domains (0 = pick from the hardware)." in
    Arg.(value & opt int 0 & info [ "j"; "domains" ] ~docv:"D" ~doc)
  in
  let artifacts_arg =
    let doc = "Directory for the campaign journal and shrunk .spec repros." in
    Arg.(value & opt string "_artifacts/soak"
         & info [ "artifacts" ] ~docv:"DIR" ~doc)
  in
  let resume_arg =
    let doc =
      "Resume an interrupted campaign from its journal (config, cursor, \
       findings and poisoned seeds are read back; a torn tail is \
       compacted away).  Other campaign flags are ignored."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)
  in
  let run legs budget seed max_adversities event_budget deadline_ms
      max_findings max_poisoned domains artifacts resume =
    let domains = if domains <= 0 then None else Some domains in
    let on_progress ~done_ ~total =
      Format.printf "soak: %d/%d jobs@." done_ total
    in
    let finish config (o : Soak.Runner.outcome) =
      Format.printf "%a" (Soak.Report.pp config) o.Soak.Runner.state;
      Format.printf "journal: %s@." o.Soak.Runner.journal;
      match Soak.Report.exit_code (Soak.Report.verdict o.Soak.Runner.state) with
      | 0 -> `Ok ()
      | code -> Stdlib.exit code
    in
    match resume with
    | Some journal ->
      (match Persist.Journal.read journal with
       | Error e -> `Error (false, e)
       | Ok { Persist.Journal.records = first :: _; _ } ->
         (match Soak.Journal.decode first with
          | Ok (Soak.Journal.Config jc) ->
            (match Soak.Campaign.config_of_journal jc with
             | Error e -> `Error (false, e)
             | Ok config ->
               (match
                  Soak.Runner.resume ?domains ~on_progress ~journal ()
                with
                | Error e -> `Error (false, e)
                | Ok o -> finish config o))
          | Ok _ | Error _ ->
            `Error (false, journal ^ ": does not start with a config record"))
       | Ok { Persist.Journal.records = []; _ } ->
         `Error (false, journal ^ ": empty journal"))
    | None ->
      let leg_results =
        List.map Soak.Campaign.leg_of_name
          (String.split_on_char ',' legs |> List.filter (fun s -> s <> ""))
      in
      (match
         List.find_map
           (function Error e -> Some e | Ok _ -> None)
           leg_results
       with
       | Some e -> `Error (false, e)
       | None ->
         let legs =
           List.filter_map
             (function Ok l -> Some l | Error _ -> None)
             leg_results
         in
         if legs = [] then `Error (false, "no campaign legs given")
         else begin
           let config =
             { Soak.Campaign.legs;
               budget;
               seed;
               max_adversities;
               event_budget;
               deadline_ms;
               max_findings;
               max_poisoned;
               artifacts }
           in
           let journal = Filename.concat artifacts "campaign.journal" in
           match Soak.Runner.start ?domains ~on_progress ~journal config with
           | Error e -> `Error (false, e)
           | Ok o -> finish config o
         end)
  in
  Cmd.v (Cmd.info "soak" ~doc)
    Term.(ret (const run $ legs_arg $ budget_arg $ seed_arg $ max_adv_arg
               $ event_budget_arg $ deadline_arg $ max_findings_arg
               $ max_poisoned_arg $ domains_arg $ artifacts_arg $ resume_arg))

(* --- service --- *)

(* The closed-loop client service layer (DESIGN.md §16).  Without [--spec]
   this runs experiment E22 — ETOB vs Paxos under the crash+partition
   schedule — and enforces its four gates (availability gap, bounded retry
   amplification, zero duplicate applies, replay determinism), writing
   BENCH_service.json and the latency artifacts for CI to upload on
   failure.  [--smoke] additionally replays QCheck-generated client
   populations and demands byte-identical digests; [--spec FILE] runs the
   [service ...] population of a builder spec file instead. *)
let service_cmd =
  let doc =
    "Run the closed-loop client service layer: the E22 availability gates, \
     or the service population of a spec file."
  in
  let smoke_arg =
    let doc =
      "CI smoke gate: E22 plus determinism checks over generated specs."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let seed_arg =
    let doc = "Engine seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let spec_arg =
    let doc =
      "Run the service population of this builder spec file (needs a \
       'service ...' line) instead of E22."
    in
    Arg.(value & opt (some file) None & info [ "spec" ] ~docv:"FILE" ~doc)
  in
  let artifacts_arg =
    let doc = "Directory for BENCH_service.json and the latency artifacts." in
    Arg.(value & opt string "_artifacts/service"
         & info [ "artifacts" ] ~docv:"DIR" ~doc)
  in
  let write_artifacts dir result =
    mkdirs dir;
    let write name contents =
      let path = Filename.concat dir name in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc contents);
      Format.printf "wrote %s@." path
    in
    write "BENCH_service.json" (Service.Experiment.to_json result);
    write "latency_etob.json"
      (Service.Experiment.histogram_json result.Service.Experiment.etob);
    write "latency_paxos.json"
      (Service.Experiment.histogram_json result.Service.Experiment.paxos)
  in
  let run_spec_file path =
    let lines = In_channel.with_open_text path In_channel.input_lines in
    match Builder.of_lines lines with
    | Error msg -> `Error (false, msg)
    | Ok b ->
      (match Service.Runner.run_builder b with
       | Error msg -> `Error (false, msg)
       | Ok o ->
         Format.printf "%a@.digest %s  dedup %s@." Service.Metrics.pp
           o.Service.Runner.report o.Service.Runner.digest
           (if o.Service.Runner.dedup_ok then "ok" else "VIOLATED");
         if o.Service.Runner.dedup_ok then `Ok ()
         else `Error (false, "duplicate applies leaked through dedup"))
  in
  (* Generated populations: each sampled spec must replay to the same
     digest on a failure-free stack, never exceed its structural attempt
     budget, and let no duplicate apply through. *)
  let generated_failures ~seed =
    let specs = Service.Experiment.sample_specs ~seed ~count:3 in
    List.concat_map
      (fun spec ->
        let setup =
          { (Harness.Scenario.default ~n:3 ~deadline:120) with
            Harness.Scenario.seed = seed }
        in
        let go () =
          Service.Runner.run ~setup ~spec ~impl:Harness.Scenario.Algorithm_5
        in
        let a = go () in
        let b = go () in
        let budget = 1 + spec.Harness.Service_spec.retries in
        let tag = Harness.Service_spec.to_string spec in
        List.filter_map Fun.id
          [ (if String.equal a.Service.Runner.digest b.Service.Runner.digest
             then None
             else Some (Printf.sprintf "generated [%s]: replay digest diverged" tag));
            (if a.Service.Runner.report.Service.Metrics.max_attempts <= budget
             then None
             else
               Some
                 (Printf.sprintf "generated [%s]: %d attempts exceed budget %d"
                    tag a.Service.Runner.report.Service.Metrics.max_attempts
                    budget));
            (if a.Service.Runner.dedup_ok then None
             else Some (Printf.sprintf "generated [%s]: duplicate applies" tag)) ])
      specs
  in
  let run smoke seed spec artifacts =
    match spec with
    | Some path -> run_spec_file path
    | None ->
      let result = Service.Experiment.run ~seed () in
      List.iter
        (fun (g : Service.Experiment.gate) ->
          Format.printf "gate %-20s %-4s %s@." g.g_name
            (if g.g_pass then "ok" else "FAIL")
            g.g_detail)
        result.Service.Experiment.gates;
      let failures =
        if smoke then generated_failures ~seed else []
      in
      List.iter (fun f -> Format.printf "FAIL %s@." f) failures;
      write_artifacts artifacts result;
      if result.Service.Experiment.pass && failures = [] then begin
        print_endline "SERVICE GATES PASSED";
        `Ok ()
      end
      else `Error (false, "service gates failed")
  in
  Cmd.v (Cmd.info "service" ~doc)
    Term.(ret (const run $ smoke_arg $ seed_arg $ spec_arg $ artifacts_arg))

(* --- cht --- *)

let cht_cmd =
  let doc = "Run the CHT reduction: emulate Omega from an EC black box." in
  let crash_arg =
    let doc = "Crash specification, e.g. 1:14 (process 1 crashes at time 14)." in
    Arg.(value & opt (some string) None & info [ "crash" ] ~docv:"P:T" ~doc)
  in
  let rounds_arg =
    let doc = "Number of emulation rounds." in
    Arg.(value & opt int 5 & info [ "rounds" ] ~docv:"R" ~doc)
  in
  let n_arg =
    let doc = "Number of processes (2 or 3; the tree grows fast)." in
    Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc)
  in
  let run n crash rounds =
    let pattern =
      match crash with
      | None -> Failures.none ~n
      | Some spec ->
        (match String.split_on_char ':' spec with
         | [ p; t ] ->
           (match int_of_string_opt p, int_of_string_opt t with
            | Some p, Some t -> Failures.of_crashes ~n [ (p, t) ]
            | _ -> Failures.none ~n)
         | _ -> Failures.none ~n)
    in
    let omega =
      Detectors.Omega.make ~pre:(Detectors.Omega.Fixed (n - 1)) pattern
        ~stabilize_at:18
    in
    let sampler p t = Cht.Fd_value.leader (Detectors.Omega.query omega ~self:p ~now:t) in
    let dag = Cht.Dag.build ~pattern ~sampler ~period:4 ~gossip:4 ~rounds:(4 + (2 * rounds)) in
    Format.printf "pattern: %a; adversarial prefix trusts p%d until t=18@."
      Failures.pp pattern (n - 1);
    let per_round =
      Cht.Extraction.emulate ~algo:Cht.Pure.ec_omega ~dag
        ~budget:Cht.Extraction.default_budget ~rounds ~round_horizon:8 ()
    in
    List.iteri
      (fun r outputs ->
         Format.printf "round %d: [%s]@." r
           (String.concat ", " (List.map (fun p -> "p" ^ string_of_int p) outputs)))
      per_round;
    match Cht.Extraction.stabilization ~pattern per_round with
    | Some (r, leader) ->
      Format.printf "stabilized from round %d on p%d (%s)@." r leader
        (if Failures.is_correct pattern leader then "correct" else "FAULTY");
      `Ok ()
    | None -> `Error (false, "did not stabilize within the emulated rounds")
  in
  Cmd.v (Cmd.info "cht" ~doc) Term.(ret (const run $ n_arg $ crash_arg $ rounds_arg))

(* ------------------------------------------------------------------ *)

let () =
  let doc = "simulate eventually consistent replication (PODC 2015 reproduction)" in
  let info = Cmd.info "ecsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; check_cmd; sweep_cmd; explore_cmd; soak_cmd;
            service_cmd; cht_cmd ]))
