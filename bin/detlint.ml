(* detlint — the determinism & protocol-hygiene gate (DESIGN.md §12).

   Usage: detlint [--strict] [--json FILE] [--verbose] [PATH...]

   Scans the given roots (default: lib bin test) and exits 0 when no
   unallowlisted finding remains, 1 when findings stand, 2 on errors
   (unparseable file, malformed allowlist directive, bad usage).  CI
   runs this as a hard gate on every push; `make lint` runs it locally. *)

let () =
  let strict = ref false in
  let json_path = ref "" in
  let verbose = ref false in
  let roots = ref [] in
  let spec =
    [ ("--strict", Arg.Set strict,
       " fixture mode: apply path-scoped rules (D4/D6) to every file");
      ("--json", Arg.Set_string json_path,
       "FILE also write the machine-readable report to FILE");
      ("--verbose", Arg.Set verbose,
       " list allowlisted (suppressed) findings with their justifications") ]
  in
  let usage = "detlint [--strict] [--json FILE] [--verbose] [PATH...]" in
  Arg.parse (Arg.align spec) (fun p -> roots := p :: !roots) usage;
  let roots =
    match List.rev !roots with [] -> [ "lib"; "bin"; "test" ] | rs -> rs
  in
  match Lint.Driver.scan ~strict:!strict roots with
  | Error e ->
    prerr_endline ("detlint: error: " ^ e);
    exit 2
  | Ok result ->
    if !json_path <> "" then
      Out_channel.with_open_text !json_path (fun oc ->
          Out_channel.output_string oc (Lint.Report.to_json result));
    if !verbose then
      List.iter
        (fun (f, reason) ->
           Format.printf "%a  (allowed: %s)@." Lint.Finding.pp_human f reason)
        result.Lint.Driver.allowed;
    Format.printf "%a" Lint.Report.pp_human result;
    exit (if result.Lint.Driver.findings = [] then 0 else 1)
