(* The benchmark harness: one section per experiment of DESIGN.md (E1-E10).

   The paper has no empirical tables (it is a theory paper); each experiment
   here regenerates one theorem-level quantitative claim, and EXPERIMENTS.md
   records the paper-vs-measured comparison.  Absolute numbers are in
   simulator ticks; what must hold is the shape: who wins, by what factor,
   and where the qualitative boundaries (majority, tau_Omega) fall. *)

open Simulator
open Ec_core

let section id title =
  Printf.printf "\n=== %s — %s ===\n%!" id title

let row fmt = Printf.printf (fmt ^^ "\n%!")

let oracle ?(pre = Detectors.Omega.Self_trust) stabilize_at =
  Harness.Scenario.Oracle { stabilize_at; pre }

let impl_name = function
  | Harness.Scenario.Algorithm_5 -> "ETOB (Alg. 5)"
  | Harness.Scenario.Paxos_baseline -> "TOB (Paxos)"
  | Harness.Scenario.Algorithm_1_over_4 -> "ETOB (Alg. 1/4)"

let verdict_mark (v : Properties.verdict) = if v.Properties.ok then "ok" else "VIOLATED"
let bool_mark b = if b then "yes" else "no"

(* Stable-delivery latency of tagged probe messages, in ticks. *)
let probe_latencies trace run =
  List.filter_map
    (fun (t, _, o) ->
       match o with
       | Etob_intf.Etob_broadcast m when String.length m.App_msg.tag >= 5
                                      && String.sub m.App_msg.tag 0 5 = "probe" ->
         (match Properties.stable_delivery_time run m with
          | Some t' -> Some (t' - t)
          | None -> None)
       | _ -> None)
    (Trace.outputs trace)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)

(* Every bench JSON records how much GC work its run cost (DESIGN.md
   §17), so allocation regressions show up in the committed artifacts —
   not only in E23's enforced budget.  [gc_mark] brackets the start of
   an experiment body; [gc_fields] renders the deltas for its JSON. *)
let gc_baseline = ref (Gc.quick_stat ())
let gc_mark () = gc_baseline := Gc.quick_stat ()

let gc_fields () =
  let s1 = Gc.quick_stat () and s0 = !gc_baseline in
  Printf.sprintf "\"gc_minor_words\": %.0f,\n  \"gc_major_words\": %.0f"
    (s1.Gc.minor_words -. s0.Gc.minor_words)
    (s1.Gc.major_words -. s0.Gc.major_words)

(* ------------------------------------------------------------------ *)
(* E1: delivery latency in communication steps (2 vs 3)                *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1" "delivery latency under a stable leader: 2 steps (ETOB) vs 3 (TOB)";
  row "  %-4s %-16s %-10s %-14s %-12s" "n" "implementation" "delta" "mean latency"
    "in steps";
  let delta = 4 in
  List.iter
    (fun n ->
       List.iter
         (fun impl ->
            let setup = { (Harness.Scenario.default ~n ~deadline:600) with
                          delay = Net.constant delta; omega = oracle 0;
                          timer_period = 1 } in
            (* Warm up (Paxos phase 1), then 8 spaced probes. *)
            let inputs =
              (10, 0, Harness.Scenario.Post "warmup")
              :: List.init 8 (fun i ->
                  (60 + (i * 40), (i + 1) mod n,
                   Harness.Scenario.Post (Printf.sprintf "probe%d" i)))
            in
            let trace = Harness.Scenario.run_etob ~inputs setup impl in
            let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
            let lat = mean (probe_latencies trace run) in
            row "  %-4d %-16s %-10d %-14.1f %-12.2f" n (impl_name impl) delta lat
              (lat /. float_of_int delta))
         [ Harness.Scenario.Algorithm_5; Harness.Scenario.Paxos_baseline ])
    [ 3; 5; 7 ];
  row "  expected: ETOB ~2.0 steps (+ <=1 tick leader batching), TOB ~3.0 steps"

(* ------------------------------------------------------------------ *)
(* E2: availability without a correct majority                         *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2" "availability without a correct majority (3 of 5 crash at t=50)";
  row "  %-16s %-22s %-22s" "implementation" "delivered (minority)" "blocked messages";
  let pattern = Failures.of_crashes ~n:5 [ (2, 50); (3, 50); (4, 50) ] in
  List.iter
    (fun impl ->
       let setup = { (Harness.Scenario.default ~n:5 ~deadline:400) with
                     pattern; omega = oracle 0 } in
       let inputs =
         [ (10, 0, Harness.Scenario.Post "early-1");
           (20, 1, Harness.Scenario.Post "early-2") ]
         @ List.init 6 (fun i ->
             (80 + (i * 20), i mod 2, Harness.Scenario.Post (Printf.sprintf "late-%d" i)))
       in
       let trace = Harness.Scenario.run_etob ~inputs setup impl in
       let run = Properties.etob_run_of_trace pattern trace in
       let final = Properties.final_d run 0 in
       let late_delivered =
         List.length
           (List.filter (fun m -> String.length m.App_msg.tag >= 4
                                && String.sub m.App_msg.tag 0 4 = "late") final)
       in
       row "  %-16s %-22s %-22d" (impl_name impl)
         (Printf.sprintf "%d of 6 post-crash" late_delivered)
         (6 - late_delivered))
    [ Harness.Scenario.Algorithm_5; Harness.Scenario.Paxos_baseline ];
  row "  expected: ETOB delivers all post-crash messages, Paxos none (needs majority)"

(* ------------------------------------------------------------------ *)
(* E3: convergence time vs the Lemma 3 bound                           *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3" "ETOB convergence vs the bound tau_Omega + Delta_t + Delta_c (Lemma 3)";
  row "  %-10s %-8s %-8s %-12s %-8s %-8s" "tau_Omega" "Delta_t" "Delta_c"
    "measured tau" "bound" "within";
  List.iter
    (fun tau_omega ->
       List.iter
         (fun timer_period ->
            List.iter
              (fun delta_c ->
                 let setup = { (Harness.Scenario.default ~n:3
                                  ~deadline:(tau_omega * 3 + 100)) with
                               timer_period;
                               delay = Net.constant delta_c;
                               omega = oracle ~pre:Detectors.Omega.Self_trust
                                   tau_omega } in
                 let inputs =
                   Harness.Scenario.spread_posts ~n:3 ~count:10 ~from_time:4
                     ~every:3
                 in
                 let trace =
                   Harness.Scenario.run_etob ~inputs setup
                     Harness.Scenario.Algorithm_5
                 in
                 let report = Harness.Scenario.etob_report setup trace in
                 let tau = Properties.etob_convergence_time report in
                 let bound = tau_omega + timer_period + delta_c in
                 row "  %-10d %-8d %-8d %-12d %-8d %-8s" tau_omega timer_period
                   delta_c tau bound (bool_mark (tau <= bound)))
              [ 1; 3; 5 ])
         [ 2; 4 ])
    [ 20; 40; 60 ];
  row "  expected: measured tau <= bound in every row"

(* ------------------------------------------------------------------ *)
(* E4: causal order through a partition                                *)
(* ------------------------------------------------------------------ *)

let partition_setup ~n ~heal =
  let blocks = [ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  let spec = { Net.blocks; from_time = 5; until_time = heal } in
  { (Harness.Scenario.default ~n ~deadline:(heal * 3)) with
    delay = Net.partitioned spec ~base:(Net.constant 1);
    omega = oracle ~pre:(Detectors.Omega.Blockwise blocks) heal }

let e4 () =
  section "E4" "causal order holds during leader disagreement (partition, claim P3)";
  row "  %-10s %-18s %-16s %-18s %-12s" "heal at" "causal violations"
    "stability tau" "total-order tau" "diverged";
  List.iter
    (fun heal ->
       let setup = partition_setup ~n:5 ~heal in
       let inputs =
         Harness.Scenario.spread_posts ~n:5 ~count:20 ~from_time:8 ~every:3
       in
       let trace = Harness.Scenario.run_etob ~inputs setup
           Harness.Scenario.Algorithm_5 in
       let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
       let report = Properties.etob_report run in
       row "  %-10d %-18d %-16d %-18d %-12s" heal
         (List.length report.Properties.causal_order.Properties.violations)
         report.Properties.tau_stability
         report.Properties.tau_total_order
         (bool_mark (Properties.etob_convergence_time report > 0)))
    [ 40; 60; 80 ];
  row "  expected: 0 causal violations in every row, while the minority side's";
  row "  sequences are genuinely revised around the healing time (stability tau";
  row "  near heal).  Total order across the partition is vacuous while the";
  row "  sides' delivered sets are disjoint."

(* ------------------------------------------------------------------ *)
(* E5: strong TOB when Omega is stable from the start                  *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5" "with tau_Omega = 0, Algorithm 5 implements full TOB (claim P2)";
  row "  %-4s %-16s %-14s %-12s %-12s" "n" "implementation" "delays"
    "strong TOB" "base props";
  List.iter
    (fun n ->
       List.iter
         (fun impl ->
            List.iter
              (fun (dname, delay) ->
                 let setup = { (Harness.Scenario.default ~n ~deadline:400) with
                               delay; omega = oracle 0 } in
                 let inputs =
                   Harness.Scenario.spread_posts ~n ~count:12 ~from_time:5 ~every:4
                 in
                 let trace = Harness.Scenario.run_etob ~inputs setup impl in
                 let report = Harness.Scenario.etob_report setup trace in
                 row "  %-4d %-16s %-14s %-12s %-12s" n (impl_name impl) dname
                   (bool_mark (Properties.is_strong_tob report))
                   (bool_mark (Properties.etob_base_ok report)))
              [ ("uniform 1-6", Net.uniform ~min:1 ~max:6) ])
         [ Harness.Scenario.Algorithm_5; Harness.Scenario.Algorithm_1_over_4;
           Harness.Scenario.Paxos_baseline ])
    [ 3; 5 ];
  row "  expected: strong TOB = yes everywhere"

(* ------------------------------------------------------------------ *)
(* E6: transformation overhead (Theorem 1 in messages per delivery)    *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6" "message cost of the Theorem 1 transformations";
  row "  %-22s %-12s %-16s %-18s" "stack" "delivered" "messages sent"
    "msgs per delivery";
  let workload n =
    Harness.Scenario.spread_posts ~n ~count:12 ~from_time:5 ~every:5
  in
  List.iter
    (fun impl ->
       let setup = { (Harness.Scenario.default ~n:3 ~deadline:300) with
                     omega = oracle 10 } in
       let trace = Harness.Scenario.run_etob ~inputs:(workload 3) setup impl in
       let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
       let delivered = List.length (Properties.final_d run 0) in
       let sent = Trace.sent trace in
       row "  %-22s %-12d %-16d %-18.1f" (impl_name impl) delivered sent
         (float_of_int sent /. float_of_int (max 1 delivered)))
    [ Harness.Scenario.Algorithm_5; Harness.Scenario.Algorithm_1_over_4;
      Harness.Scenario.Paxos_baseline ];
  (* EC side: direct Algorithm 4 vs Algorithm 2 over Algorithm 5. *)
  let values self ~instance = Value.Num ((self * 100) + instance) in
  let ec_cost name runner =
    let setup = { (Harness.Scenario.default ~n:3 ~deadline:600) with
                  omega = oracle 10 } in
    let trace = runner setup in
    let run = Properties.ec_run_of_trace setup.Harness.Scenario.pattern trace in
    let decided = List.length (Properties.decided_instances run) in
    row "  %-22s %-12d %-16d %-18.1f" name decided (Trace.sent trace)
      (float_of_int (Trace.sent trace) /. float_of_int (max 1 decided))
  in
  ec_cost "EC direct (Alg. 4)"
    (fun setup ->
       Harness.Scenario.run_ec_omega setup ~propose_value:values ~max_instance:20);
  ec_cost "EC via ETOB (Alg. 2/5)"
    (fun setup ->
       Harness.Scenario.run_ec_via_etob setup Harness.Scenario.Algorithm_5
         ~propose_value:values ~max_instance:20);
  row "  expected: transformations correct but costlier than the direct algorithms"

(* ------------------------------------------------------------------ *)
(* E7: the CHT extraction stabilizes on a correct leader               *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7" "CHT reduction: emulated Omega stabilizes on a correct process";
  row "  %-28s %-18s %-14s %-10s" "scenario" "per-round output"
    "stabilized at" "correct";
  let budget = Cht.Extraction.default_budget in
  (* The adversarial Omega prefix trusts p1 everywhere — in the crash
     scenarios p1 is faulty, so early extraction rounds are genuinely
     misled and the table shows the "eventually" at work. *)
  let scenarios =
    [ ("n=2, failure-free, omega", `Omega (Failures.none ~n:2, 18));
      ("n=2, p1 crashes, omega", `Omega (Failures.of_crashes ~n:2 [ (1, 14) ], 18));
      ("n=2, failure-free, <>P", `Ep (Failures.none ~n:2, 12));
      ("n=3, p2 crashes, omega", `Omega (Failures.of_crashes ~n:3 [ (2, 14) ], 18)) ]
  in
  List.iter
    (fun (name, spec) ->
       let pattern, dag, algo =
         match spec with
         | `Omega (pattern, stab) ->
           let omega =
             Detectors.Omega.make ~pre:(Detectors.Omega.Fixed 1) pattern
               ~stabilize_at:stab
           in
           let sampler p t =
             Cht.Fd_value.leader (Detectors.Omega.query omega ~self:p ~now:t)
           in
           (pattern,
            Cht.Dag.build ~pattern ~sampler ~period:4 ~gossip:4 ~rounds:14,
            Cht.Pure.ec_omega)
         | `Ep (pattern, stab) ->
           let ep = Detectors.Suspicions.eventually_perfect pattern ~stabilize_at:stab in
           let sampler p t =
             Cht.Fd_value.suspects (Detectors.Suspicions.query_ep ep ~self:p ~now:t)
           in
           (pattern,
            Cht.Dag.build ~pattern ~sampler ~period:4 ~gossip:4 ~rounds:14,
            Cht.Pure.ec_trusted)
       in
       let per_round =
         Cht.Extraction.emulate ~algo ~dag ~budget ~rounds:5 ~round_horizon:8 ()
       in
       let outputs =
         String.concat " "
           (List.map
              (fun round ->
                 "[" ^ String.concat "," (List.map string_of_int round) ^ "]")
              per_round)
       in
       match Cht.Extraction.stabilization ~pattern per_round with
       | Some (r, leader) ->
         row "  %-28s %-18s round %-8d %-10s" name outputs r
           (bool_mark (Failures.is_correct pattern leader))
       | None -> row "  %-28s %-18s %-14s %-10s" name outputs "never" "-")
    scenarios;
  row "  expected: every scenario stabilizes on a correct process"

(* ------------------------------------------------------------------ *)
(* E8: EIC equivalence (Appendix A)                                    *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8" "eventual irrevocable consensus (Appendix A)";
  row "  %-14s %-14s %-18s %-16s %-14s" "tau_Omega" "revocations"
    "integrity index" "eic agreement" "ec recovered";
  List.iter
    (fun tau ->
       let flag self ~instance = Value.Flag ((self + instance) mod 2 = 0) in
       let setup = { (Harness.Scenario.default ~n:3 ~deadline:500) with
                     omega = oracle ~pre:Detectors.Omega.Self_trust tau } in
       let trace = Harness.Scenario.run_eic_over_ec setup ~propose_value:flag
           ~max_instance:60 in
       let run = Properties.eic_run_of_trace setup.Harness.Scenario.pattern trace in
       (* Algorithm 7 on top recovers plain EC. *)
       let trace7 = Harness.Scenario.run_ec_via_eic setup ~propose_value:flag
           ~max_instance:60 in
       let run7 = Properties.ec_run_of_trace setup.Harness.Scenario.pattern trace7 in
       let report7 = Properties.ec_report run7 ~instances:60 in
       row "  %-14d %-14d %-18d %-16s %-14s" tau
         (Properties.eic_revocation_count run)
         (Properties.eic_integrity_index run)
         (verdict_mark (Properties.check_eic_agreement run))
         (bool_mark (Properties.ec_ok ~agreement_by:60 report7)))
    [ 0; 30; 60 ];
  row "  expected: revocations grow with tau_Omega but stay finite; agreement";
  row "  holds; Algorithm 7 recovers EC in every row"

(* ------------------------------------------------------------------ *)
(* E9: the eventually consistent replicated KV store                   *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9" "replicated KV across a partition: divergence window and convergence";
  row "  %-16s %-12s %-16s %-14s %-12s" "implementation" "converged"
    "divergence ticks" "conv. time" "rollbacks";
  let heal = 60 in
  let inputs =
    [ (10, 0, Replication.Replica.Submit (Replication.Command.put "x" "left"));
      (12, 3, Replication.Replica.Submit (Replication.Command.put "x" "right"));
      (20, 1, Replication.Replica.Submit (Replication.Command.put "y" "1"));
      (25, 4, Replication.Replica.Submit (Replication.Command.put "z" "2")) ]
  in
  List.iter
    (fun impl ->
       let setup = partition_setup ~n:5 ~heal in
       let module R = Replication.Replica.Make (Replication.Machines.Kv) in
       let make_node ctx =
         let proto_node, service = Harness.Scenario.etob_node setup impl ctx in
         let _, replica_node = R.create ctx ~etob:service in
         (Engine.stack [ proto_node; replica_node ], ())
       in
       let trace, _ =
         Engine.run_with (Harness.Scenario.engine_config setup) ~make_node ~inputs
       in
       let run =
         Replication.Convergence.run_of_trace setup.Harness.Scenario.pattern trace
       in
       row "  %-16s %-12s %-16d %-14d %-12d" (impl_name impl)
         (bool_mark (Replication.Convergence.converged run))
         (Replication.Convergence.divergence_ticks ~from_time:10 run)
         (Replication.Convergence.convergence_time run)
         (Replication.Convergence.total_rollbacks run))
    [ Harness.Scenario.Algorithm_5; Harness.Scenario.Paxos_baseline ];
  row "  expected: ETOB diverges during the partition, converges shortly after";
  row "  healing, with visible rollbacks; Paxos never diverges (it stalls instead)"

(* ------------------------------------------------------------------ *)
(* E11: committed-prefix indications (Section 7 extension)             *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11" "committed-prefix indications on top of ETOB (Section 7)";
  row "  %-26s %-12s %-12s %-14s %-14s" "scenario" "delivered" "committed"
    "commit stable" "consistent";
  let scenarios =
    [ ("stable majority", { (Harness.Scenario.default ~n:5 ~deadline:250) with
                            omega = oracle 0 },
       Harness.Scenario.spread_posts ~n:5 ~count:10 ~from_time:8 ~every:4);
      ("minority after t=50",
       { (Harness.Scenario.default ~n:5 ~deadline:300) with
         pattern = Failures.of_crashes ~n:5 [ (2, 50); (3, 50); (4, 50) ];
         omega = oracle 0 },
       [ (10, 0, Harness.Scenario.Post "a"); (20, 1, Harness.Scenario.Post "b");
         (80, 0, Harness.Scenario.Post "c"); (120, 1, Harness.Scenario.Post "d") ]);
      ("partition, heal at 60", partition_setup ~n:5 ~heal:60,
       Harness.Scenario.spread_posts ~n:5 ~count:10 ~from_time:8 ~every:4) ]
  in
  List.iter
    (fun (name, setup, inputs) ->
       let trace = Harness.Scenario.run_etob_with_commits ~inputs setup in
       let pattern = setup.Harness.Scenario.pattern in
       let commits = Properties.commit_run_of_trace pattern trace in
       let etob = Properties.etob_run_of_trace pattern trace in
       let p = List.hd (Failures.correct pattern) in
       row "  %-26s %-12d %-12d %-14s %-14s" name
         (List.length (Properties.final_d etob p))
         (Properties.committed_count commits p)
         (verdict_mark (Properties.check_commit_stability commits))
         (verdict_mark (Properties.check_commit_consistent commits etob)))
    scenarios;
  row "  expected: everything commits under a stable majority; commitments stall";
  row "  (but never roll back) without one; the minority side's messages commit";
  row "  only once the partition heals"

(* ------------------------------------------------------------------ *)
(* E12: ablations (DESIGN.md section 6)                                *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "E12" "ablations: omega source, promote period, tie-break, link order";
  (* (a) Oracle vs emulated Omega: the emulation pays its own stabilization. *)
  row "  -- omega source (algorithm 5, n=3, constant delay 2) --";
  row "  %-20s %-30s %-16s" "omega" "probe latency (ticks)" "convergence tau";
  List.iter
    (fun (name, omega) ->
       let setup = { (Harness.Scenario.default ~n:3 ~deadline:400) with
                     delay = Net.constant 2; omega; timer_period = 2 } in
       let inputs =
         List.init 6 (fun i ->
             (100 + (i * 30), i mod 3, Harness.Scenario.Post (Printf.sprintf "probe%d" i)))
       in
       let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
       let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
       let report = Properties.etob_report run in
       let lat =
         match Harness.Stats.of_list (probe_latencies trace run) with
         | Some s -> Format.asprintf "%a" Harness.Stats.pp s
         | None -> "n/a"
       in
       row "  %-20s %-30s %-16d" name lat
         (Properties.etob_convergence_time report))
    [ ("oracle (tau=0)", oracle 0);
      ("elected (hb=4)", Harness.Scenario.Elected { initial_timeout = 4 }) ];
  (* (b) Promote period Delta_t: latency vs message cost. *)
  row "  -- promote period Delta_t (algorithm 5, n=3, delay 2) --";
  row "  %-10s %-30s %-14s" "Delta_t" "probe latency (ticks)" "msgs sent";
  List.iter
    (fun timer_period ->
       let setup = { (Harness.Scenario.default ~n:3 ~deadline:400) with
                     delay = Net.constant 2; omega = oracle 0; timer_period } in
       let inputs =
         List.init 6 (fun i ->
             (100 + (i * 30), i mod 3, Harness.Scenario.Post (Printf.sprintf "probe%d" i)))
       in
       let trace = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
       let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
       let lat =
         match Harness.Stats.of_list (probe_latencies trace run) with
         | Some s -> Format.asprintf "%a" Harness.Stats.pp s
         | None -> "n/a"
       in
       row "  %-10d %-30s %-14d" timer_period lat (Trace.sent trace))
    [ 1; 2; 4; 8 ];
  (* (c) UpdatePromote tie-break: any topological choice is correct. *)
  row "  -- UpdatePromote tie-break (partition scenario, all properties) --";
  row "  %-16s %-12s %-14s" "tie-break" "base props" "causal order";
  let tie_breaks =
    [ ("(origin,sn)", Causal_graph.default_tie_break);
      ("reversed", fun a b -> Causal_graph.default_tie_break b a);
      ("by-sn-first",
       fun a b -> compare (a.App_msg.sn, a.App_msg.origin) (b.App_msg.sn, b.App_msg.origin)) ]
  in
  List.iter
    (fun (name, tie_break) ->
       let setup = partition_setup ~n:5 ~heal:50 in
       let omega_of = Harness.Scenario.omega_module setup in
       let make_node ctx =
         let omega, omega_node = omega_of ctx in
         let t, node = Etob_omega.create ~tie_break ctx ~omega in
         (Engine.stack [ omega_node; node;
                         Harness.Scenario.post_driver (Etob_omega.service t) ], ())
       in
       let inputs = Harness.Scenario.spread_posts ~n:5 ~count:12 ~from_time:8 ~every:3 in
       let trace, _ =
         Engine.run_with (Harness.Scenario.engine_config setup) ~make_node ~inputs
       in
       let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
       let report = Properties.etob_report run in
       row "  %-16s %-12s %-14s" name
         (bool_mark (Properties.etob_base_ok report))
         (verdict_mark report.Properties.causal_order))
    tie_breaks;
  (* (d) FIFO vs reordering links x stale-promote guard: claim (P2) needs
     either FIFO links or the guard. *)
  row "  -- link ordering x stale-promote guard (algorithm 5, stable omega) --";
  row "  %-16s %-10s %-14s %-14s" "links" "guard" "strong TOB" "base props";
  List.iter
    (fun (lname, delay) ->
       List.iter
         (fun (gname, stale_guard) ->
            (* Stateful models (fifo) re-instantiate per run on their own. *)
            let setup = { (Harness.Scenario.default ~n:4 ~deadline:300) with
                          delay; omega = oracle 0 } in
            let omega_of = Harness.Scenario.omega_module setup in
            let make_node ctx =
              let omega, omega_node = omega_of ctx in
              let t, node = Etob_omega.create ~stale_guard ctx ~omega in
              (Engine.stack [ omega_node; node;
                              Harness.Scenario.post_driver (Etob_omega.service t) ], ())
            in
            let inputs =
              Harness.Scenario.spread_posts ~n:4 ~count:10 ~from_time:5 ~every:4
            in
            let trace, _ =
              Engine.run_with (Harness.Scenario.engine_config setup) ~make_node ~inputs
            in
            let report = Harness.Scenario.etob_report setup trace in
            row "  %-16s %-10s %-14s %-14s" lname gname
              (bool_mark (Properties.is_strong_tob report))
              (bool_mark (Properties.etob_base_ok report)))
         [ ("on", true); ("off", false) ])
    [ ("reordering", Net.uniform ~min:1 ~max:7);
      ("fifo", Net.fifo ~base:(Net.uniform ~min:1 ~max:7)) ];
  row "  expected: correct under every ablation; the emulated omega adds its";
  row "  own stabilization; larger Delta_t trades latency for fewer messages"

(* ------------------------------------------------------------------ *)
(* E13: why Omega — the leaderless baseline has no bounded tau         *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13" "the information content of Omega: leaderless gossip vs Algorithm 5";
  row "  %-16s %-18s %-22s %-22s" "workload ends" "pairs of posts"
    "gossip stability tau" "Alg. 5 stability tau";
  List.iter
    (fun workload_end ->
       let pairs = workload_end / 10 in
       let inputs =
         List.concat
           (List.init pairs (fun i ->
                let t = 10 + (i * 10) in
                [ (t, 0, Harness.Scenario.Post (Printf.sprintf "a%d" i));
                  (t, 2, Harness.Scenario.Post (Printf.sprintf "b%d" i)) ]))
       in
       let deadline = workload_end + 120 in
       let mk () = { (Harness.Scenario.default ~n:3 ~deadline) with
                     delay = Net.uniform ~min:1 ~max:4; omega = oracle 0 } in
       let setup = mk () in
       let gossip = Harness.Scenario.run_gossip_order ~inputs setup in
       let g_tau =
         (Properties.etob_report
            (Properties.etob_run_of_trace setup.Harness.Scenario.pattern gossip))
           .Properties.tau_stability
       in
       let setup = mk () in
       let etob = Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5 in
       let e_tau =
         (Properties.etob_report
            (Properties.etob_run_of_trace setup.Harness.Scenario.pattern etob))
           .Properties.tau_stability
       in
       row "  %-16d %-18d %-22d %-22d" workload_end pairs g_tau e_tau)
    [ 100; 200; 400 ];
  row "  expected: the gossip baseline's tau tracks the workload end (no";
  row "  environment-bounded stabilization exists without Omega), while";
  row "  Algorithm 5's tau stays at its tau_Omega-determined constant (0 here)"

(* ------------------------------------------------------------------ *)
(* E14: session guarantees across a partition                          *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14" "session guarantees: what clients see (partition, heal at t=120)";
  let heal = 120 in
  let setup = { (partition_setup ~n:5 ~heal) with deadline = 320 } in
  let module Dual = Replication.Committed_replica.Make (Replication.Machines.Kv) in
  let make_node ctx =
    let omega, omega_node = Harness.Scenario.omega_module setup ctx in
    let etob, etob_node = Etob_omega.create ctx ~omega in
    let service = Etob_omega.service etob in
    let replica, replica_node =
      Dual.create ctx ~etob:service ~omega
        ~promotion:(fun () -> Etob_omega.promotion etob)
    in
    let key = Replication.Session.key_of ctx.Engine.self in
    let lookup state = Replication.Machines.String_map.find_opt key state in
    let views =
      [ { Replication.Session.v_name = "speculative";
          v_lookup = (fun () -> lookup (Dual.speculative_state replica)) };
        { Replication.Session.v_name = "committed";
          v_lookup = (fun () -> lookup (Dual.committed_state replica)) } ]
    in
    let _, session_node =
      Replication.Session.create ctx ~session:ctx.Engine.self ~views
        ~submit:(Dual.submit replica)
    in
    (Engine.stack [ omega_node; etob_node; replica_node; session_node ], ())
  in
  let inputs =
    List.concat_map
      (fun p ->
         List.init 23 (fun i -> (20 + (i * 12), p, Replication.Session.Session_step)))
      [ 0; 3 ]
  in
  let trace, _ =
    Engine.run_with (Harness.Scenario.engine_config setup) ~make_node ~inputs
  in
  row "  %-22s %-14s %-8s %-8s %-8s %-16s" "session" "view" "reads" "RYW"
    "MR" "last violation";
  List.iter
    (fun (session, side) ->
       List.iter
         (fun view ->
            let t = Replication.Session.tally_of_trace trace ~session ~view in
            row "  %-22s %-14s %-8d %-8d %-8d %-16d" side view t.Replication.Session.reads
              t.Replication.Session.ryw_violations t.Replication.Session.mr_violations
              t.Replication.Session.last_violation)
         [ "speculative"; "committed" ])
    [ (0, "p0 (majority side)"); (3, "p3 (minority side)") ];
  row "  expected: the majority session is clean; the minority's committed view";
  row "  violates read-your-writes for the whole partition (nothing certifies);";
  row "  every stream is clean shortly after the heal"

(* ------------------------------------------------------------------ *)
(* E15: multi-seed sweep — E1 latencies with error bars                *)
(* ------------------------------------------------------------------ *)

(* One E1-style run per seed, fanned over domains; jittered links so the
   seed actually matters.  Besides the printed table, emits a
   machine-readable BENCH_sweep.json for tracking across revisions. *)
let e15 () =
  section "E15" "multi-seed E1: probe latency, mean +/- stddev over 32 seeds";
  gc_mark ();
  let n = 3 and seeds = 32 in
  let domains = Harness.Sweep.default_domains () in
  row "  %d seeds per implementation, %d domains" seeds domains;
  row "  %-16s %-18s %-14s %-10s" "implementation" "mean latency" "stddev" "runs";
  let sweep_impl impl =
    let per_seed ~seed =
      let setup = { (Harness.Scenario.default ~n ~deadline:600) with
                    seed;
                    delay = Net.uniform ~min:2 ~max:6; omega = oracle 0;
                    timer_period = 1 } in
      let inputs =
        (10, 0, Harness.Scenario.Post "warmup")
        :: List.init 8 (fun i ->
            (60 + (i * 40), (i + 1) mod n,
             Harness.Scenario.Post (Printf.sprintf "probe%d" i)))
      in
      let trace = Harness.Scenario.run_etob ~inputs setup impl in
      let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
      mean (probe_latencies trace run)
    in
    let results =
      Harness.Sweep.map ~domains
        ~seeds:(Harness.Sweep.seed_range ~base:1 ~count:seeds) per_seed
    in
    let means = List.map (fun r -> r.Harness.Sweep.value) results in
    match Harness.Sweep.mean_stddev means with
    | None -> assert false
    | Some (m, sd) ->
      row "  %-16s %-18.2f %-14.2f %-10d" (impl_name impl) m sd (List.length means);
      (impl_name impl, m, sd, List.length means)
  in
  let rows =
    List.map sweep_impl
      [ Harness.Scenario.Algorithm_5; Harness.Scenario.Paxos_baseline ]
  in
  row "  expected: ETOB mean below TOB mean; stddev > 0 under jittered links";
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"E15\",\n  \"seeds\": %d,\n  \"domains\": %d,\n  \
       \"results\": [\n%s\n  ],\n  %s\n}\n"
      seeds domains
      (String.concat ",\n"
         (List.map
            (fun (name, m, sd, runs) ->
               Printf.sprintf
                 "    {\"impl\": \"%s\", \"mean_latency\": %.4f, \
                  \"stddev\": %.4f, \"runs\": %d}"
                 name m sd runs)
            rows))
      (gc_fields ())
  in
  let path =
    if Sys.file_exists "bench" && Sys.is_directory "bench"
    then Filename.concat "bench" "BENCH_sweep.json"
    else "BENCH_sweep.json"
  in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc json);
  row "  wrote %s" path

(* ------------------------------------------------------------------ *)
(* E16: adversarial explorer — detection budget per seeded mutant      *)
(* ------------------------------------------------------------------ *)

(* How many adversity plans does the bounded explorer need before each
   seeded single-decision mutant of Algorithm 5 is caught?  Reported as
   the plan budget consumed at first detection, per mutant and per seed,
   plus the shrunk counterexample size.  The faithful protocol is run
   under the full budget as the control row (it must stay clean). *)
let e16 () =
  section "E16" "adversarial explorer: plans-to-detection per Algorithm 5 mutant";
  let budget = 500 and max_adversities = 4 in
  let seeds = [ 1; 7; 42 ] in
  row "  budget %d plans, <=%d adversities per plan, seeds %s" budget
    max_adversities
    (String.concat "," (List.map string_of_int seeds));
  row "  %-24s %-10s %-14s %-12s" "mutant" "seed" "plans-to-find" "shrunk-size";
  let target mutation = { Explore.Explorer.default_target with mutation } in
  List.iter
    (fun m ->
       List.iter
         (fun seed ->
            let e =
              Explore.Explorer.explore (target (Some m)) ~seed ~budget
                ~max_adversities ()
            in
            match e.Explore.Explorer.found with
            | None ->
              row "  %-24s %-10d %-14s %-12s" (Etob_omega.mutation_name m)
                seed "NOT FOUND" "-"
            | Some o ->
              let shrunk = Explore.Explorer.shrink (target (Some m)) o in
              row "  %-24s %-10d %-14d %-12d" (Etob_omega.mutation_name m)
                seed e.Explore.Explorer.plans_run
                (Explore.Adversity.size shrunk.Explore.Explorer.plan))
         seeds)
    Etob_omega.all_mutations;
  let control =
    Explore.Explorer.explore (target None) ~seed:(List.hd seeds) ~budget
      ~max_adversities ()
  in
  row "  %-24s %-10d %-14s %-12s" "(faithful control)" (List.hd seeds)
    (match control.Explore.Explorer.found with
     | None -> Printf.sprintf "clean/%d" control.Explore.Explorer.plans_run
     | Some _ -> "VIOLATION")
    "-";
  row "  expected: every mutant found within budget; faithful row clean"

(* ------------------------------------------------------------------ *)
(* E17: crash-recovery — catch-up time and disk-fault tolerance        *)
(* ------------------------------------------------------------------ *)

(* The recoverable stack (Algorithm 5 under the write-ahead log and the
   retransmission links) under one mid-run downtime window, with
   increasingly damaged stable storage.  Reported per scenario: how long
   the restarted process takes to produce its first post-restart output
   revision, how much state the replay recovered, what the links re-sent,
   and whether the post-recovery run still satisfies every checked
   property.  The amnesia mutant (skip-log-replay) is the negative
   control: it must be caught by the distinct-broadcasts checker.
   Besides the table, emits machine-readable BENCH_recovery.json. *)
let e17 () =
  section "E17" "crash-recovery: replay catch-up, disk faults, post-recovery verdicts";
  gc_mark ();
  let n = 4 and deadline = 300 and proc = 1 and at = 60 in
  let rows_spec =
    [ ("short-window", 80, None, None);
      ("long-window", 140, None, None);
      ("torn-tail", 140, Some Persist.Store.Torn_tail, None);
      ("lost-suffix-3", 140, Some (Persist.Store.Lost_suffix 3), None);
      ("corrupt-record", 140, Some Persist.Store.Corrupt_record, None);
      ("amnesia-mutant", 140, None, Some Recoverable.Skip_log_replay) ]
  in
  row "  p%d down [%d, recover), 12 posts spread over %d ticks, n=%d" proc at
    deadline n;
  row "  %-16s %-9s %-9s %-9s %-7s %-6s %-8s %-8s %-6s" "scenario" "recover"
    "catchup" "replayed" "resent" "lost" "causal" "distinct" "tau";
  let run_row (label, recover_at, fault, mutation) =
    let setup =
      { (Harness.Scenario.default ~n ~deadline) with
        delay = Net.uniform ~min:1 ~max:3;
        pattern =
          Failures.crash_recover_at (Failures.none ~n) proc ~at ~recover_at;
        omega = oracle 0 }
    in
    let inputs =
      Harness.Scenario.spread_posts ~n ~count:12 ~from_time:8 ~every:20
    in
    let stores = Persist.Store.pool ~n in
    Option.iter (fun k -> Persist.Store.arm_fault stores.(proc) k) fault;
    let trace, handles, stores =
      Harness.Scenario.run_recoverable ~inputs ?mutation ~stores setup
    in
    let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
    let report = Properties.etob_report run in
    (* Catch-up: delay until the restarted process's first output revision. *)
    let catchup =
      match
        List.filter_map
          (fun (t, p, o) ->
             match o with
             | Etob_intf.Etob_deliver _ when p = proc && t >= recover_at ->
               Some t
             | _ -> None)
          (Trace.outputs trace)
      with
      | [] -> -1
      | ts -> List.fold_left min max_int ts - recover_at
    in
    let resent =
      Array.fold_left (fun acc h -> acc + Recoverable.retransmitted h) 0 handles
    in
    let st = Persist.Store.stats stores.(proc) in
    let causal = report.Properties.causal_order
    and distinct = report.Properties.distinct_broadcasts in
    let tau = Properties.etob_convergence_time report in
    row "  %-16s %-9d %-9d %-9d %-7d %-6d %-8s %-8s %-6d" label recover_at
      catchup
      (Recoverable.replayed_msgs handles.(proc))
      resent st.Persist.Store.records_lost (verdict_mark causal)
      (verdict_mark distinct) tau;
    Printf.sprintf
      "    {\"scenario\": \"%s\", \"recover_at\": %d, \"catchup_ticks\": %d, \
       \"replayed_msgs\": %d, \"retransmitted\": %d, \"restarts\": %d, \
       \"records_lost\": %d, \"corrupt_detected\": %d, \
       \"causal_order_ok\": %b, \"distinct_broadcasts_ok\": %b, \
       \"convergence_tau\": %d}"
      label recover_at catchup
      (Recoverable.replayed_msgs handles.(proc))
      resent st.Persist.Store.restarts st.Persist.Store.records_lost
      st.Persist.Store.corrupt_detected causal.Properties.ok
      distinct.Properties.ok tau
  in
  let json_rows = List.map run_row rows_spec in
  row "  expected: faithful rows all ok with bounded catch-up; the amnesia";
  row "  mutant's distinct column VIOLATED (sequence numbers reused)";
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"E17\",\n  \"n\": %d,\n  \"deadline\": %d,\n  \
       \"crash_at\": %d,\n  \"results\": [\n%s\n  ],\n  %s\n}\n"
      n deadline at
      (String.concat ",\n" json_rows)
      (gc_fields ())
  in
  let path =
    if Sys.file_exists "bench" && Sys.is_directory "bench"
    then Filename.concat "bench" "BENCH_recovery.json"
    else "BENCH_recovery.json"
  in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc json);
  row "  wrote %s" path

(* ------------------------------------------------------------------ *)
(* E18: lossy-partition heal — anti-entropy digest vs flood            *)
(* ------------------------------------------------------------------ *)

(* Algorithm 5 plus the anti-entropy layer under a lossy partition that
   isolates one process across most of the workload: cross-block traffic
   is LOST (not buffered), so after the heal the isolated replica and the
   majority must re-teach each other whatever each side missed.  Digest
   mode (constant-size summaries answered with O(missing) deltas) is
   compared with the Flood strawman (periodic full-set pushes): both must
   converge — the watchdog verdict and heal-to-convergence time are
   reported — but the digest run must carry strictly fewer application
   messages in its repair traffic.  That inequality is enforced, not just
   printed.  Besides the table, emits machine-readable
   BENCH_partition.json. *)
let e18 () =
  section "E18" "lossy-partition heal: anti-entropy digest vs flood repair traffic";
  gc_mark ();
  let n = 4 and deadline = 240 in
  let from_time = 40 and until_time = 120 in
  let spec = { Net.blocks = [ [ 0; 1; 2 ]; [ 3 ] ]; from_time; until_time } in
  let inputs = Harness.Scenario.spread_posts ~n ~count:12 ~from_time:8 ~every:8 in
  let last_post = 8 + (11 * 8) in
  let mode_name = function
    | Anti_entropy.Digest -> "digest"
    | Anti_entropy.Flood -> "flood"
  in
  row "  p3 cut off by a LOSSY partition [%d, %d); 12 posts up to t=%d; n=%d"
    from_time until_time last_post n;
  row "  %-8s %-10s %-9s %-9s %-8s %-8s %-9s %-8s %-6s" "mode" "converged"
    "heal2cvg" "digests" "deltas" "floods" "payload" "learned" "causal";
  let run_mode mode =
    let setup =
      { (Harness.Scenario.default ~n ~deadline) with
        delay = Net.uniform ~min:1 ~max:3;
        faults = Net.lossy_partition spec;
        omega = oracle 0 }
    in
    let trace, handles =
      Harness.Scenario.run_etob_ae ~inputs
        ~ae_config:{ Anti_entropy.default_config with Anti_entropy.mode }
        setup
    in
    let run = Properties.etob_run_of_trace setup.Harness.Scenario.pattern trace in
    let report = Properties.etob_report run in
    let settle = max until_time last_post in
    let converged_at =
      match Harness.Watchdog.check ~settle ~bound:(deadline - settle) run with
      | Harness.Watchdog.Converged { at } -> at
      | Harness.Watchdog.Stalled _ -> -1
    in
    let sum f =
      Array.fold_left
        (fun acc (_, ae) -> acc + f (Anti_entropy.stats ae))
        0 handles
    in
    let digests = sum (fun s -> s.Anti_entropy.digests_sent)
    and deltas = sum (fun s -> s.Anti_entropy.deltas_sent)
    and floods = sum (fun s -> s.Anti_entropy.floods_sent)
    and payload = sum (fun s -> s.Anti_entropy.delta_msgs + s.Anti_entropy.flood_msgs)
    and learned = sum (fun s -> s.Anti_entropy.learned) in
    let causal = report.Properties.causal_order in
    let heal2cvg = if converged_at < 0 then -1 else converged_at - until_time in
    row "  %-8s %-10d %-9d %-9d %-8d %-8d %-9d %-8d %-6s" (mode_name mode)
      converged_at heal2cvg digests deltas floods payload learned
      (verdict_mark causal);
    ( converged_at, payload,
      Printf.sprintf
        "    {\"mode\": \"%s\", \"converged_at\": %d, \
         \"heal_to_convergence\": %d, \"digests_sent\": %d, \
         \"deltas_sent\": %d, \"floods_sent\": %d, \"payload_msgs\": %d, \
         \"learned\": %d, \"causal_order_ok\": %b}"
        (mode_name mode) converged_at heal2cvg digests deltas floods payload
        learned causal.Properties.ok )
  in
  let d_at, d_payload, d_json = run_mode Anti_entropy.Digest in
  let f_at, f_payload, f_json = run_mode Anti_entropy.Flood in
  row "  expected: both modes converge shortly after the heal; the digest run's";
  row "  repair payload is strictly smaller than the flood run's (enforced)";
  if d_at < 0 || f_at < 0 then
    failwith "E18: a mode failed to converge after the partition healed";
  if d_payload >= f_payload then
    failwith
      (Printf.sprintf "E18: digest payload %d not < flood payload %d"
         d_payload f_payload);
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"E18\",\n  \"n\": %d,\n  \"deadline\": %d,\n  \
       \"partition\": {\"isolated\": 3, \"from\": %d, \"until\": %d, \
       \"lossy\": true},\n  \"digest_payload_strictly_smaller\": true,\n  \
       \"results\": [\n%s\n  ],\n  %s\n}\n"
      n deadline from_time until_time
      (String.concat ",\n" [ d_json; f_json ])
      (gc_fields ())
  in
  let path =
    if Sys.file_exists "bench" && Sys.is_directory "bench"
    then Filename.concat "bench" "BENCH_partition.json"
    else "BENCH_partition.json"
  in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc json);
  row "  wrote %s" path

(* ------------------------------------------------------------------ *)
(* E19: detlint hygiene gate — scan speed and cleanliness              *)
(* ------------------------------------------------------------------ *)

(* The determinism linter of lib/lint (DESIGN.md §12) over the same roots
   CI gates on.  Two properties are enforced, not just printed: the tree
   is clean (zero findings — allowlisted suppressions are fine), and the
   whole scan stays comfortably interactive, under a 5 s budget, so the
   gate never becomes the slow part of the feedback loop.  Emits
   machine-readable BENCH_lint.json. *)
let e19 () =
  section "E19" "detlint static-analysis gate: scan speed and cleanliness";
  gc_mark ();
  let roots = List.filter Sys.file_exists [ "lib"; "bin"; "test" ] in
  if List.length roots < 3 then
    row "  skipped: not run from the repository root (lib/ bin/ test/ missing)"
  else begin
    let budget = 5.0 in
    let t0 = Sys.time () in
    let result =
      match Lint.Driver.scan ~strict:false roots with
      | Ok r -> r
      | Error e -> failwith ("E19: detlint scan error: " ^ e)
    in
    let elapsed = Sys.time () -. t0 in
    let findings = List.length result.Lint.Driver.findings in
    let allowed = List.length result.Lint.Driver.allowed in
    row "  %-14s %-10s %-10s %-12s %-8s" "files_scanned" "findings"
      "allowed" "elapsed_s" "budget_s";
    row "  %-14d %-10d %-10d %-12.3f %-8.1f" result.Lint.Driver.files
      findings allowed elapsed budget;
    row "  expected: zero findings and the scan finishes within budget \
         (both enforced)";
    List.iter
      (fun f -> row "  unexpected finding: %s" (Format.asprintf "%a" Lint.Finding.pp_human f))
      result.Lint.Driver.findings;
    if findings > 0 then
      failwith (Printf.sprintf "E19: detlint found %d findings" findings);
    if elapsed >= budget then
      failwith
        (Printf.sprintf "E19: detlint scan took %.3f s (budget %.1f s)"
           elapsed budget);
    let json =
      Printf.sprintf
        "{\n  \"experiment\": \"E19\",\n  \"roots\": [\"lib\", \"bin\", \
         \"test\"],\n  \"files_scanned\": %d,\n  \"findings\": %d,\n  \
         \"allowlisted\": %d,\n  \"elapsed_seconds\": %.3f,\n  \
         \"budget_seconds\": %.1f,\n  \"clean\": true,\n  \
         \"within_budget\": true,\n  %s\n}\n"
        result.Lint.Driver.files findings allowed elapsed budget (gc_fields ())
    in
    let path =
      if Sys.file_exists "bench" && Sys.is_directory "bench"
      then Filename.concat "bench" "BENCH_lint.json"
      else "BENCH_lint.json"
    in
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc json);
    row "  wrote %s" path
  end

(* ------------------------------------------------------------------ *)
(* E10: substrate micro-benchmarks (Bechamel)                          *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let engine_run n =
    Staged.stage (fun () ->
        let setup = { (Harness.Scenario.default ~n ~deadline:100) with
                      omega = oracle 0 } in
        let inputs = Harness.Scenario.spread_posts ~n ~count:5 ~from_time:5 ~every:4 in
        ignore (Harness.Scenario.run_etob ~inputs setup Harness.Scenario.Algorithm_5))
  in
  let linearize =
    let msgs =
      List.init 100 (fun i ->
          App_msg.make ~origin:(i mod 5) ~sn:i
            ~deps:(if i = 0 then [] else [ ((i - 1) mod 5, i - 1) ]) ())
    in
    let g = List.fold_left Causal_graph.add Causal_graph.empty msgs in
    Staged.stage (fun () -> ignore (Causal_graph.linearize g ~prefix:[]))
  in
  let cht_extract =
    let pattern = Failures.none ~n:2 in
    let omega = Detectors.Omega.make pattern ~stabilize_at:0 in
    let sampler p t = Cht.Fd_value.leader (Detectors.Omega.query omega ~self:p ~now:t) in
    let dag = Cht.Dag.build ~pattern ~sampler ~period:4 ~gossip:4 ~rounds:8 in
    Staged.stage (fun () ->
        ignore
          (Cht.Extraction.extract ~algo:Cht.Pure.ec_omega ~dag
             ~budget:Cht.Extraction.default_budget ~self:0 ()))
  in
  Test.make_grouped ~name:"substrate"
    [ Test.make ~name:"etob run n=3 (100 ticks)" (engine_run 3);
      Test.make ~name:"etob run n=7 (100 ticks)" (engine_run 7);
      Test.make ~name:"causal_graph linearize (100 msgs)" linearize;
      Test.make ~name:"cht extract (n=2)" cht_extract ]

let e10 () =
  section "E10" "substrate micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (bechamel_suite ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  row "  %-40s %-16s" "benchmark" "time per run";
  Hashtbl.iter
    (fun _measure tbl ->
       Hashtbl.iter
         (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) ->
              let pretty =
                if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
                else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
                else Printf.sprintf "%.0f ns" t
              in
              row "  %-40s %-16s" name pretty
            | Some [] | None -> row "  %-40s %-16s" name "n/a")
         tbl)
    results

(* ------------------------------------------------------------------ *)
(* E20a: framed binary trace + CRC32 WAL vs jsonl + MD5                *)
(* ------------------------------------------------------------------ *)

(* The trace/WAL fast path (DESIGN.md §14).  Two enforced inequalities,
   measured on the same data old-vs-new:

   - serialization: encoding a realistic event stream as framed binary
     records ([Frame.event_record]) must beat the jsonl renderer
     ([Frame.event_to_jsonl], byte-identical to [Sink.jsonl]) on both
     throughput and output size;
   - WAL: the full append+sync+crash-replay cycle over protocol-sized
     records must be faster under the incremental-CRC32 framing than
     under the legacy per-record MD5.

   Rates are CPU-time measured over an adaptive iteration count (at
   least [quota] seconds each), so the numbers are stable across
   machines; what is enforced is the ratio, not the absolute rate.
   Besides the table, emits machine-readable BENCH_trace.json. *)
let e20a () =
  section "E20a" "framed binary trace + CRC32 WAL vs jsonl + MD5";
  gc_mark ();
  let module Frame = Persist.Frame in
  let module Store = Persist.Store in
  let quota = 0.4 in
  let timed f =
    (* one warm-up call, then run for at least [quota] CPU-seconds *)
    f ();
    let t0 = Sys.time () in
    let iters = ref 0 in
    while Sys.time () -. t0 < quota do
      f ();
      incr iters
    done;
    float_of_int !iters /. (Sys.time () -. t0)
  in
  (* (a) trace serialization: the event mix of a real run — mostly
     send/deliver with rendered input/output text sprinkled in. *)
  let n_events = 4096 in
  let events =
    Array.init n_events (fun i ->
        let t = i / 4 and uid = i in
        match i mod 8 with
        | 0 -> Frame.Input { t; proc = i mod 5; v = Printf.sprintf "post \"m%d\"" i }
        | 1 | 2 | 3 -> Frame.Send { t; src = i mod 5; dst = (i + 1) mod 5; uid }
        | 4 | 5 | 6 ->
          Frame.Deliver
            { t = t + 2; src = i mod 5; dst = (i + 1) mod 5; uid; lat = 2 }
        | _ ->
          Frame.Output
            { t; proc = i mod 5; v = Printf.sprintf "deliver p%d \"m%d\"" (i mod 5) i })
  in
  let bin_bytes =
    Array.fold_left (fun a e -> a + String.length (Frame.event_record e))
      (String.length Frame.header) events
  in
  let jsonl_bytes =
    Array.fold_left (fun a e -> a + String.length (Frame.event_to_jsonl e) + 1)
      0 events
  in
  let bin_rate =
    timed (fun () ->
        Array.iter (fun e -> ignore (Frame.event_record e)) events)
  in
  let jsonl_rate =
    timed (fun () ->
        Array.iter (fun e -> ignore (Frame.event_to_jsonl e)) events)
  in
  let file =
    let b = Buffer.create (bin_bytes + 8) in
    Buffer.add_string b Frame.header;
    Array.iter (fun e -> Buffer.add_string b (Frame.event_record e)) events;
    Buffer.contents b
  in
  let decode_rate =
    timed (fun () ->
        match Frame.decode file with
        | Ok _ -> ()
        | Error _ -> failwith "E20a: self-encoded trace failed to decode")
  in
  let ev_rate r = r *. float_of_int n_events in
  row "  trace serialization over %d events (send/deliver-heavy mix):" n_events;
  row "  %-8s %14s %12s" "format" "encode ev/s" "bytes";
  row "  %-8s %14.0f %12d" "jsonl" (ev_rate jsonl_rate) jsonl_bytes;
  row "  %-8s %14.0f %12d" "binary" (ev_rate bin_rate) bin_bytes;
  row "  binary decode: %.0f ev/s (full file, checksums verified)"
    (ev_rate decode_rate);
  (* (b) WAL cycle: append protocol-shaped records, sync, crash-replay. *)
  let n_records = 64 in
  let payloads =
    Array.init n_records (fun i -> Printf.sprintf "m %d %d payload-%d" (i * 37) i i)
  in
  let wal checksum () =
    let s = Store.create ~checksum () in
    ignore (Store.open_ s);
    Array.iter (Store.append s) payloads;
    Store.sync s;
    let o = Store.open_ s in
    if List.length o.Store.records <> n_records then
      failwith "E20a: WAL replay lost records without a fault"
  in
  let rec_rate r = r *. float_of_int n_records in
  let md5_rate = timed (wal Store.Md5) in
  let crc_rate = timed (wal Store.Crc32) in
  row "  WAL append+sync+replay over %d protocol-sized records:" n_records;
  row "  %-8s %14s" "checksum" "records/s";
  row "  %-8s %14.0f" "md5" (rec_rate md5_rate);
  row "  %-8s %14.0f" "crc32" (rec_rate crc_rate);
  let ser_speedup = bin_rate /. jsonl_rate in
  let wal_speedup = crc_rate /. md5_rate in
  row "  expected: binary encoding strictly faster and smaller than jsonl";
  row "  (x%.2f, %d vs %d bytes); CRC32 WAL strictly faster than MD5 (x%.2f)."
    ser_speedup bin_bytes jsonl_bytes wal_speedup;
  row "  All three inequalities are enforced.";
  if bin_bytes >= jsonl_bytes then
    failwith
      (Printf.sprintf "E20a: binary trace %d bytes not < jsonl %d bytes"
         bin_bytes jsonl_bytes);
  if ser_speedup <= 1.0 then
    failwith
      (Printf.sprintf
         "E20a: binary encode rate not > jsonl encode rate (x%.2f)" ser_speedup);
  if wal_speedup <= 1.0 then
    failwith
      (Printf.sprintf "E20a: CRC32 WAL rate not > MD5 WAL rate (x%.2f)"
         wal_speedup);
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"E20a\",\n  \"events\": %d,\n  \
       \"jsonl_encode_events_per_s\": %.0f,\n  \
       \"binary_encode_events_per_s\": %.0f,\n  \
       \"binary_decode_events_per_s\": %.0f,\n  \"jsonl_bytes\": %d,\n  \
       \"binary_bytes\": %d,\n  \"serialization_speedup\": %.3f,\n  \
       \"wal_records\": %d,\n  \"md5_wal_records_per_s\": %.0f,\n  \
       \"crc32_wal_records_per_s\": %.0f,\n  \"wal_speedup\": %.3f,\n  \
       \"binary_strictly_smaller\": true,\n  \
       \"binary_strictly_faster\": true,\n  \
       \"crc32_strictly_faster\": true,\n  %s\n}\n"
      n_events (ev_rate jsonl_rate) (ev_rate bin_rate) (ev_rate decode_rate)
      jsonl_bytes bin_bytes ser_speedup n_records (rec_rate md5_rate)
      (rec_rate crc_rate) wal_speedup (gc_fields ())
  in
  let path =
    if Sys.file_exists "bench" && Sys.is_directory "bench"
    then Filename.concat "bench" "BENCH_trace.json"
    else "BENCH_trace.json"
  in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc json);
  row "  wrote %s" path

(* ------------------------------------------------------------------ *)
(* E21: crash-safe soak campaign — journal overhead + resume speedup   *)
(* ------------------------------------------------------------------ *)

(* The soak runner (DESIGN.md §15) buys crash-safety with a flushed
   journal record per job.  This leg prices that insurance and enforces
   the two claims that make it worth paying:

   - resume equivalence: a campaign interrupted halfway (stop_after, the
     deterministic SIGKILL stand-in) and resumed produces a coverage
     digest byte-identical to the uninterrupted run;
   - resume is replay, not re-execution: resuming an already-complete
     journal must be strictly faster than running the campaign, because
     it only decodes and folds the journal.

   Wall time comes from Harness.Clock (the sanctioned monotonic shim) —
   campaigns fan out over domains, so CPU time would double-count. *)
let e21 () =
  section "E21" "crash-safe soak campaign: journal overhead + resume speedup";
  gc_mark ();
  let module Campaign = Soak.Campaign in
  let module Runner = Soak.Runner in
  let clock = Harness.Clock.monotonic () in
  let wall_ms f =
    let t0 = Harness.Clock.now_ms clock in
    let r = f () in
    (r, max 1 (Harness.Clock.elapsed_ms clock ~since:t0))
  in
  let tmp suffix =
    let f = Filename.temp_file "bench-e21" suffix in
    Sys.remove f;
    f
  in
  let config =
    { Campaign.legs =
        [ { Campaign.name = "alg5"; target = Explore.Explorer.default_target } ];
      budget = 80;
      seed = 1;
      max_adversities = 3;
      event_budget = 200_000;
      deadline_ms = 10_000;
      max_findings = 4;
      max_poisoned = 8;
      artifacts = tmp ".artifacts" }
  in
  let total = Campaign.total_jobs config in
  let journal = tmp ".journal" in
  let full, run_ms =
    wall_ms (fun () ->
        match Runner.start ~domains:2 ~journal config with
        | Ok o -> o
        | Error e -> failwith ("E21: campaign failed: " ^ e))
  in
  let digest = Campaign.coverage_digest full.Runner.state in
  let journal_bytes =
    In_channel.with_open_bin journal (fun ic -> In_channel.length ic)
    |> Int64.to_int
  in
  (* Interrupt at half the jobs, then resume to completion. *)
  let half_journal = tmp ".journal" in
  let config_half = { config with Campaign.artifacts = tmp ".artifacts" } in
  (match Runner.start ~domains:2 ~stop_after:(total / 2) ~journal:half_journal
           config_half with
   | Ok _ -> ()
   | Error e -> failwith ("E21: interrupted campaign failed: " ^ e));
  let resumed, resume_ms =
    wall_ms (fun () ->
        match Runner.resume_with ~domains:2 ~journal:half_journal config_half with
        | Ok o -> o
        | Error e -> failwith ("E21: resume failed: " ^ e))
  in
  let resumed_digest = Campaign.coverage_digest resumed.Runner.state in
  (* Resume of the completed journal: pure replay, no jobs. *)
  let replayed, replay_ms =
    wall_ms (fun () ->
        match Runner.resume_with ~domains:2 ~journal config with
        | Ok o -> o
        | Error e -> failwith ("E21: replay failed: " ^ e))
  in
  let replayed_digest = Campaign.coverage_digest replayed.Runner.state in
  let jobs_per_s = float_of_int total *. 1000. /. float_of_int run_ms in
  let bytes_per_job = float_of_int journal_bytes /. float_of_int total in
  let replay_speedup = float_of_int run_ms /. float_of_int replay_ms in
  row "  campaign: %d jobs in %d ms (%.0f jobs/s, %d clean, %d poisoned)"
    total run_ms jobs_per_s full.Runner.state.Campaign.clean
    full.Runner.state.Campaign.poisoned;
  row "  journal: %d bytes (%.1f bytes/job, flushed per record)"
    journal_bytes bytes_per_job;
  row "  interrupted at %d jobs, resumed in %d ms: digest %s" (total / 2)
    resume_ms
    (if resumed_digest = digest then "identical" else "DIVERGED");
  row "  completed-journal resume (pure replay): %d ms (x%.1f vs run)"
    replay_ms replay_speedup;
  row "  expected: resume digests byte-identical; replay strictly faster";
  row "  than re-running.  Both are enforced.";
  if resumed_digest <> digest then
    failwith "E21: interrupted-and-resumed digest diverged from baseline";
  if replayed_digest <> digest then
    failwith "E21: completed-journal replay digest diverged from baseline";
  if replay_ms >= run_ms then
    failwith
      (Printf.sprintf "E21: replay (%d ms) not faster than re-run (%d ms)"
         replay_ms run_ms);
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"E21\",\n  \"jobs\": %d,\n  \
       \"run_ms\": %d,\n  \"jobs_per_s\": %.1f,\n  \
       \"journal_bytes\": %d,\n  \"bytes_per_job\": %.1f,\n  \
       \"interrupted_resume_ms\": %d,\n  \"replay_ms\": %d,\n  \
       \"replay_speedup\": %.1f,\n  \
       \"interrupted_digest_identical\": true,\n  \
       \"replay_digest_identical\": true,\n  %s\n}\n"
      total run_ms jobs_per_s journal_bytes bytes_per_job resume_ms replay_ms
      replay_speedup (gc_fields ())
  in
  let path =
    if Sys.file_exists "bench" && Sys.is_directory "bench"
    then Filename.concat "bench" "BENCH_soak.json"
    else "BENCH_soak.json"
  in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc json);
  row "  wrote %s" path;
  Sys.remove journal;
  Sys.remove half_journal

(* ------------------------------------------------------------------ *)
(* E22: closed-loop service availability under a crash+partition       *)
(* ------------------------------------------------------------------ *)

(* The service layer of DESIGN.md §16: a closed-loop client population
   (retries, backoff, admission control, breaker degradation) driven
   against Algorithm 5 with the committed prefix and against the Paxos
   baseline, under one lossy-partition + majority-crash schedule.  Four
   gates are enforced, not just printed: a strict minority-partition
   availability gap in ETOB's favour, retry amplification within budget,
   zero duplicate applies through the replica-side dedup machine, and a
   byte-identical replay digest.  Emits machine-readable
   BENCH_service.json. *)
let e22 () =
  section "E22" "closed-loop service: availability under crash + lossy partition";
  let result = Service.Experiment.run () in
  let spec = Service.Experiment.spec in
  row "  %d replicas, %d clients; lossy partition isolates {3,4}; replica 1"
    result.Service.Experiment.etob.s_outcome.Service.Runner.replicas
    spec.Harness.Service_spec.clients;
  row "  crashes after the heal; spec: %s" (Harness.Service_spec.to_string spec);
  row "  %-6s %-9s %-9s %-12s %-7s %-7s %-7s %-8s" "impl" "requests"
    "avail" "minority" "amp" "sheds" "migr" "p99/p999";
  let side (s : Service.Experiment.side) =
    let o = s.Service.Experiment.s_outcome in
    let r = o.Service.Runner.report in
    let started, ok = s.Service.Experiment.s_minority in
    let p99, p999 =
      match r.Service.Metrics.latency with
      | Some l -> (l.Sink.p99, l.Sink.p999)
      | None -> (-1, -1)
    in
    row "  %-6s %-9d %-9.2f %d/%d (%.2f)  %-7.2f %-7d %-7d %d/%d"
      s.Service.Experiment.s_name r.Service.Metrics.requests
      (Service.Metrics.availability r) ok started
      (Service.Metrics.ratio s.Service.Experiment.s_minority)
      (Service.Metrics.amplification r) r.Service.Metrics.sheds
      r.Service.Metrics.migrations p99 p999
  in
  side result.Service.Experiment.etob;
  side result.Service.Experiment.paxos;
  List.iter
    (fun (g : Service.Experiment.gate) ->
      row "  gate %-20s %-4s %s" g.g_name
        (if g.g_pass then "ok" else "FAIL")
        g.g_detail)
    result.Service.Experiment.gates;
  row "  expected: ETOB serves the minority through speculative degradation;";
  row "  Paxos writes die without a majority.  All four gates are enforced.";
  let json = Service.Experiment.to_json result in
  let path =
    if Sys.file_exists "bench" && Sys.is_directory "bench"
    then Filename.concat "bench" "BENCH_service.json"
    else "BENCH_service.json"
  in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc json);
  row "  wrote %s" path;
  if not result.Service.Experiment.pass then
    failwith "E22: a service-layer gate failed (see the table above)"

(* ------------------------------------------------------------------ *)
(* E23: per-event allocation on the engine hot path (budget enforced)  *)
(* ------------------------------------------------------------------ *)

(* alloclint (DESIGN.md §17) proves the engine's hot path free of
   unjustified allocation sites statically; this leg prices what the
   static gate deliberately allows — the RNG's Int64 boxing and the
   protocol/observer callbacks behind the justified A2 allows — and
   enforces a hard budget in bytes per simulated event.  The two gates
   cover each other: an allocation smuggled past alloclint through a
   newly allowed callback trips the budget here, and a budget-friendly
   but unjustified site trips alloclint.

   The workload is the E15 scenario family (jittered links, oracle
   Omega, tight timers) so the number is comparable across revisions of
   the same benchmark.  Bytes are charged per automaton step (deliver,
   timer or input dispatch, [Trace.steps]), measured as the minor-word
   delta across whole runs after one warm-up run has paid all one-time
   module and node construction.  Emits machine-readable
   BENCH_alloc.json. *)
let e23 () =
  section "E23" "per-event allocation: minor-heap bytes per engine step";
  let n = 3 and seeds = [ 2; 3; 4; 5 ] in
  (* Measured 2026-08: ~145 B/step (Alg. 5), ~405 B/step (Paxos, fewer
     steps to amortize over).  The budget gives the worst row ~2.5x
     headroom; a hot-path allocation regression multiplies the rate. *)
  let budget_bytes = 1024.0 in
  let word_bytes = float_of_int (Sys.word_size / 8) in
  let run_once impl seed =
    let setup = { (Harness.Scenario.default ~n ~deadline:600) with
                  seed;
                  delay = Net.uniform ~min:2 ~max:6; omega = oracle 0;
                  timer_period = 1 } in
    let inputs =
      (10, 0, Harness.Scenario.Post "warmup")
      :: List.init 8 (fun i ->
          (60 + (i * 40), (i + 1) mod n,
           Harness.Scenario.Post (Printf.sprintf "probe%d" i)))
    in
    let trace = Harness.Scenario.run_etob ~inputs setup impl in
    Trace.steps trace
  in
  row "  E15 scenario family, %d seeds per implementation, budget %.0f B/step"
    (List.length seeds) budget_bytes;
  row "  %-16s %-10s %-16s %-16s %-12s" "implementation" "steps"
    "minor words" "major words" "bytes/step";
  let measure impl =
    ignore (run_once impl 1);  (* warm-up: one-time init is not charged *)
    let s0 = Gc.quick_stat () in
    let steps =
      List.fold_left (fun acc seed -> acc + run_once impl seed) 0 seeds
    in
    let s1 = Gc.quick_stat () in
    let minor = s1.Gc.minor_words -. s0.Gc.minor_words in
    let major = s1.Gc.major_words -. s0.Gc.major_words in
    let bytes_per_step = minor *. word_bytes /. float_of_int (max 1 steps) in
    row "  %-16s %-10d %-16.0f %-16.0f %-12.1f" (impl_name impl) steps minor
      major bytes_per_step;
    (impl_name impl, steps, minor, major, bytes_per_step)
  in
  let rows =
    List.map measure
      [ Harness.Scenario.Algorithm_5; Harness.Scenario.Paxos_baseline ]
  in
  row "  expected: every implementation within the %.0f bytes/step budget"
    budget_bytes;
  row "  (enforced; the static half of the gate is `make lint`'s alloclint)";
  List.iter
    (fun (name, _, _, _, b) ->
       if b > budget_bytes then
         failwith
           (Printf.sprintf "E23: %s allocates %.1f bytes/step (budget %.0f)"
              name b budget_bytes))
    rows;
  let json =
    Printf.sprintf
      "{\n  \"experiment\": \"E23\",\n  \"seeds\": %d,\n  \
       \"budget_bytes_per_step\": %.0f,\n  \"word_bytes\": %.0f,\n  \
       \"results\": [\n%s\n  ],\n  \"within_budget\": true\n}\n"
      (List.length seeds) budget_bytes word_bytes
      (String.concat ",\n"
         (List.map
            (fun (name, steps, minor, major, b) ->
               Printf.sprintf
                 "    {\"impl\": \"%s\", \"steps\": %d, \
                  \"gc_minor_words\": %.0f, \"gc_major_words\": %.0f, \
                  \"bytes_per_step\": %.1f}"
                 name steps minor major b)
            rows))
  in
  let path =
    if Sys.file_exists "bench" && Sys.is_directory "bench"
    then Filename.concat "bench" "BENCH_alloc.json"
    else "BENCH_alloc.json"
  in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc json);
  row "  wrote %s" path

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E11", e11); ("E12", e12);
    ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16); ("E17", e17);
    ("E18", e18); ("E19", e19); ("E20A", e20a); ("E21", e21); ("E22", e22);
    ("E23", e23); ("E10", e10) ]

(* No arguments runs every experiment; otherwise each argument names one
   (case-insensitive), e.g. `dune exec bench/main.exe -- E18 E17`. *)
let () =
  let args = List.tl (Array.to_list Sys.argv) in
  List.iter
    (fun a ->
       if not (List.mem_assoc (String.uppercase_ascii a) experiments) then begin
         Printf.eprintf "unknown experiment %s; known: %s\n" a
           (String.concat " " (List.map fst experiments));
         exit 2
       end)
    args;
  let selected =
    if args = [] then experiments
    else
      List.filter
        (fun (id, _) ->
           List.exists (fun a -> String.uppercase_ascii a = id) args)
        experiments
  in
  print_endline "Reproduction benchmarks: The Weakest Failure Detector for";
  print_endline "Eventual Consistency (Dubois, Guerraoui, Kuznetsov, Petit, Sens,";
  print_endline "PODC 2015). One section per experiment in DESIGN.md.";
  List.iter (fun (_, f) -> f ()) selected;
  print_endline "\nAll experiment tables printed."
